//! The shared concurrent TDD store: a lock-striped unique table plus a
//! sharded, canonically-snapping weight-interning table over append-only
//! arenas.
//!
//! A [`SharedTddStore`] lets several [`crate::TddManager`]s — one per
//! worker thread — hash-cons nodes and intern weights into *one* set of
//! tables, so common sub-diagrams built by different workers are stored
//! once and cross-thread `NodeId`/`WeightId` handles stay valid
//! everywhere. Three design rules make this safe and fast:
//!
//! * **Append-only arenas.** Nodes, weights and elimination sets live in
//!   append-only arenas that never move or free entries, so `node(id)` and
//!   `weight_value(id)` are lock-free reads from any thread. Compacting
//!   garbage collection is therefore impossible while a store is shared;
//!   [`crate::gc::collect`] degrades to a documented no-op (memory is
//!   bounded by cross-thread sharing instead of collection).
//! * **Lock striping.** Find-or-insert goes through one of
//!   [`STRIPES`] mutex-guarded hash-map shards selected by the key's
//!   hash (nodes) or quantised bucket (weights), so insertions from
//!   different workers rarely contend and reads of already-interned data
//!   never block on unrelated insertions.
//! * **Canonical interning.** The private [`crate::WeightTable`] merges
//!   values *first-come-first-served* within a tolerance, which makes
//!   the stored representative depend on insertion order — harmless
//!   sequentially, but racy across threads. The shared table instead
//!   snaps every value to the centre of a fine sub-tolerance grid cell,
//!   a pure function of the value alone. Every arithmetic result is
//!   then identical whatever the thread interleaving, which is what
//!   makes shared-store parallel runs **bit-identical** to sequential
//!   ones.

use crate::manager::{Edge, Node, NodeId, TddStats, TERMINAL_VAR};
use crate::weight::WeightId;
use qaec_math::C64;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of mutex stripes in each concurrent table. A power of two so
/// stripe selection is a mask.
pub const STRIPES: usize = 64;

/// log2 of the first arena chunk's capacity.
const FIRST_BITS: u32 = 10;
/// Spine length: chunk sizes double, so 33 chunks cover > 2^42 entries —
/// far beyond the `u32` id space actually addressable.
const SPINE: usize = 33;

/// An append-only, grow-only arena with lock-free reads.
///
/// Entries are immutable once pushed. Storage is a spine of
/// doubling-size chunks (1024, 1024, 2048, 4096, …) allocated lazily, so
/// pushing never moves existing entries and readers never observe a
/// reallocation. A single internal mutex serialises appends; the
/// published length is released *after* the slot is written, so any
/// reader that checks `index < len` (with an acquire load) sees fully
/// initialised data.
/// One lazily-allocated chunk of arena slots.
type Chunk<T> = Box<[UnsafeCell<MaybeUninit<T>>]>;

struct AppendArena<T> {
    spine: [OnceLock<Chunk<T>>; SPINE],
    len: AtomicUsize,
    push_lock: Mutex<()>,
}

// SAFETY: slots are written exactly once, before the fence provided by
// `len.store(Release)` / the caller's stripe mutex, and are immutable
// afterwards; readers only dereference indices below the acquired `len`.
unsafe impl<T: Send + Sync> Sync for AppendArena<T> {}
unsafe impl<T: Send> Send for AppendArena<T> {}

/// Maps an entry index to its (chunk, offset) coordinates.
#[inline]
fn locate(index: usize) -> (usize, usize) {
    let adjusted = index + (1usize << FIRST_BITS);
    let level = usize::BITS - 1 - adjusted.leading_zeros();
    let chunk = (level - FIRST_BITS) as usize;
    (chunk, adjusted - (1usize << level))
}

impl<T> AppendArena<T> {
    fn new() -> Self {
        AppendArena {
            spine: std::array::from_fn(|_| OnceLock::new()),
            len: AtomicUsize::new(0),
            push_lock: Mutex::new(()),
        }
    }

    /// Number of initialised entries.
    #[inline]
    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Appends `value`, returning its index.
    fn push(&self, value: T) -> usize {
        let _guard = self.push_lock.lock().expect("arena push lock poisoned");
        let index = self.len.load(Ordering::Relaxed);
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get_or_init(|| {
            let capacity = 1usize << (FIRST_BITS as usize + chunk);
            (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect()
        });
        // SAFETY: `index` is past the published length, so no reader may
        // touch this slot yet, and the push lock excludes other writers.
        unsafe { (*slots[offset].get()).write(value) };
        self.len.store(index + 1, Ordering::Release);
        index
    }

    /// Reads the entry at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[inline]
    fn get(&self, index: usize) -> &T {
        assert!(index < self.len(), "arena index {index} out of bounds");
        let (chunk, offset) = locate(index);
        let slots = self.spine[chunk].get().expect("chunk published");
        // SAFETY: `index < len` (acquire) implies the slot was fully
        // written before the length was released, and it never mutates.
        unsafe { (*slots[offset].get()).assume_init_ref() }
    }
}

impl<T> Drop for AppendArena<T> {
    fn drop(&mut self) {
        if !std::mem::needs_drop::<T>() {
            return;
        }
        for index in 0..*self.len.get_mut() {
            let (chunk, offset) = locate(index);
            if let Some(slots) = self.spine[chunk].get_mut() {
                // SAFETY: every index below `len` was initialised once
                // and is dropped exactly once here.
                unsafe { slots[offset].get_mut().assume_init_drop() };
            }
        }
    }
}

/// Computes the stripe for a hashable key.
#[inline]
fn stripe_of<K: Hash>(key: &K) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) & (STRIPES - 1)
}

/// The concurrent node + weight + elimination-set store shared by the
/// worker managers of one parallel run.
///
/// Create one per run with [`SharedTddStore::new`] (or
/// [`SharedTddStore::with_tolerance`]) and hand clones of the `Arc` to
/// [`crate::TddManager::new_shared`]. All handles minted by any attached
/// manager are valid in every other attached manager.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::{SharedTddStore, TddManager};
///
/// let store = SharedTddStore::new();
/// let mut a = TddManager::new_shared(&store);
/// let mut b = TddManager::new_shared(&store);
/// let ea = {
///     let l = a.terminal(C64::real(1.0));
///     let h = a.terminal(C64::real(2.0));
///     a.make_node(0, l, h)
/// };
/// let eb = {
///     let l = b.terminal(C64::real(1.0));
///     let h = b.terminal(C64::real(2.0));
///     b.make_node(0, l, h)
/// };
/// // Hash-consed across managers: same node id, stored exactly once.
/// assert_eq!(ea, eb);
/// assert_eq!(store.stats().nodes_created, 1);
/// assert_eq!(store.stats().cross_unique_hits, 1);
/// ```
#[derive(Debug)]
pub struct SharedTddStore {
    tol: f64,
    /// Canonical snapping grid width. Deliberately finer than the
    /// private merging radius (`tol`): first-come-first-served merging
    /// only perturbs *colliding* values, while snapping perturbs every
    /// intern, so the cell is shrunk to `tol / 32` to keep cumulative
    /// drift inside even the checker's tightest 1e-10 accuracy targets —
    /// while staying orders of magnitude above f64 round-off (~1e-15),
    /// which is what canonicity actually has to unify.
    grid: f64,
    /// Magnitudes past this fall back to exact-bits interning (the
    /// tolerance grid is meaningless out there and its `i64` key would
    /// saturate).
    huge: f64,
    nodes: AppendArena<Node>,
    node_stripes: Vec<Mutex<HashMap<Node, (NodeId, u32)>>>,
    weights: AppendArena<C64>,
    weight_stripes: Vec<Mutex<HashMap<(i64, i64), WeightId>>>,
    huge_weights: Mutex<HashMap<(u64, u64), WeightId>>,
    elim_sets: AppendArena<Box<[u32]>>,
    elim_ids: Mutex<HashMap<Vec<u32>, u32>>,
    unique_hits: AtomicU64,
    cross_unique_hits: AtomicU64,
    workers: AtomicU32,
}

impl std::fmt::Debug for AppendArena<Node> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppendArena<Node>(len = {})", self.len())
    }
}

impl std::fmt::Debug for AppendArena<C64> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppendArena<C64>(len = {})", self.len())
    }
}

impl std::fmt::Debug for AppendArena<Box<[u32]>> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AppendArena<elim>(len = {})", self.len())
    }
}

impl SharedTddStore {
    /// A shared store with the default weight tolerance (`1e-10`),
    /// matching [`crate::TddManager::new`].
    pub fn new() -> Arc<Self> {
        Self::with_tolerance(1e-10)
    }

    /// A shared store with a custom weight tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Arc<Self> {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        let grid = tol / 32.0;
        let store = SharedTddStore {
            tol,
            grid,
            // Past this the grid key `round(x / grid)` nears `i64`
            // saturation and f64 precision; see `intern_weight`.
            huge: 0.5 * (i64::MAX as f64) * grid,
            nodes: AppendArena::new(),
            node_stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            weights: AppendArena::new(),
            weight_stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            huge_weights: Mutex::new(HashMap::new()),
            elim_sets: AppendArena::new(),
            elim_ids: Mutex::new(HashMap::new()),
            unique_hits: AtomicU64::new(0),
            cross_unique_hits: AtomicU64::new(0),
            workers: AtomicU32::new(0),
        };
        // Slot 0: the terminal sentinel, as in the private arena.
        store.nodes.push(Node {
            var: TERMINAL_VAR,
            low: Edge::ZERO,
            high: Edge::ZERO,
        });
        // Weight slots 0/1: exact 0 and 1, pre-inserted under their grid
        // keys so `WeightId::{ZERO, ONE}` hold exact constants.
        store.weights.push(C64::ZERO);
        store.weights.push(C64::ONE);
        let one_key = store.grid_key(C64::ONE);
        store.weight_stripes[stripe_of(&one_key)]
            .lock()
            .expect("weight stripe poisoned")
            .insert(one_key, WeightId::ONE);
        Arc::new(store)
    }

    /// The weight-interning tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Registers a new worker and returns its id (used to attribute
    /// cross-thread unique-table hits). [`crate::TddManager::new_shared`]
    /// calls this for you.
    pub fn register_worker(&self) -> u32 {
        self.workers.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of arena slots allocated (live nodes, excluding the
    /// terminal sentinel). Monotone: the shared store never compacts.
    pub fn arena_len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of distinct interned weights.
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    /// Store-level statistics: total nodes created across *all* attached
    /// managers, unique-table hits, and how many of those hits resolved
    /// to a node created by a different worker. Merge this **once** into
    /// a report — per-manager [`crate::TddManager::stats`] deliberately
    /// exclude these store-owned counters so they are never
    /// double-counted (each worker would otherwise re-report the same
    /// global allocations).
    pub fn stats(&self) -> TddStats {
        TddStats {
            nodes_created: self.arena_len() as u64,
            unique_hits: self.unique_hits.load(Ordering::Relaxed),
            cross_unique_hits: self.cross_unique_hits.load(Ordering::Relaxed),
            peak_nodes: self.arena_len(),
            ..TddStats::default()
        }
    }

    #[inline]
    fn grid_key(&self, z: C64) -> (i64, i64) {
        let w = self.grid;
        ((z.re / w).round() as i64, (z.im / w).round() as i64)
    }

    /// Interns a value by snapping it to the centre of its grid cell —
    /// a pure function of the value, so every thread interleaving maps
    /// equal inputs to the same id *and the same stored value*.
    pub(crate) fn intern_weight(&self, z: C64) -> WeightId {
        debug_assert!(z.is_finite(), "non-finite weight {z}");
        if z.re.abs() <= self.tol && z.im.abs() <= self.tol {
            return WeightId::ZERO;
        }
        if z.re.abs() >= self.huge || z.im.abs() >= self.huge {
            // Exact-bits interning: tolerance is below one ulp out here.
            let key = (z.re.to_bits(), z.im.to_bits());
            let mut map = self.huge_weights.lock().expect("huge weights poisoned");
            if let Some(&id) = map.get(&key) {
                return id;
            }
            let id = WeightId(self.weights.push(z) as u32);
            map.insert(key, id);
            return id;
        }
        let key = self.grid_key(z);
        let mut stripe = self.weight_stripes[stripe_of(&key)]
            .lock()
            .expect("weight stripe poisoned");
        if let Some(&id) = stripe.get(&key) {
            return id;
        }
        let w = self.grid;
        let snapped = C64::new(key.0 as f64 * w, key.1 as f64 * w);
        let id = WeightId(self.weights.push(snapped) as u32);
        stripe.insert(key, id);
        id
    }

    /// The value behind a weight handle (lock-free).
    #[inline]
    pub(crate) fn weight_value(&self, w: WeightId) -> C64 {
        *self.weights.get(w.0 as usize)
    }

    /// Hash-conses a (pre-normalized) node, returning its id. `worker`
    /// attributes cross-thread hits.
    pub(crate) fn unique_node(&self, key: Node, worker: u32) -> NodeId {
        let mut stripe = self.node_stripes[stripe_of(&key)]
            .lock()
            .expect("node stripe poisoned");
        match stripe.get(&key) {
            Some(&(id, creator)) => {
                self.unique_hits.fetch_add(1, Ordering::Relaxed);
                if creator != worker {
                    self.cross_unique_hits.fetch_add(1, Ordering::Relaxed);
                }
                id
            }
            None => {
                let id = NodeId(self.nodes.push(key) as u32);
                stripe.insert(key, (id, worker));
                id
            }
        }
    }

    /// The node behind an id (lock-free).
    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> Node {
        *self.nodes.get(n.0 as usize)
    }

    /// Interns an elimination set; ids are globally consistent, which is
    /// what lets contraction caches travel between workers.
    pub(crate) fn intern_elim_set(&self, levels: Vec<u32>) -> u32 {
        let mut map = self.elim_ids.lock().expect("elim set map poisoned");
        if let Some(&id) = map.get(&levels) {
            return id;
        }
        let id = self.elim_sets.push(levels.clone().into_boxed_slice()) as u32;
        map.insert(levels, id);
        id
    }

    /// The levels behind an elimination-set id (lock-free).
    #[inline]
    pub(crate) fn elim_set(&self, id: u32) -> &[u32] {
        self.elim_sets.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_locate_covers_doubling_chunks() {
        assert_eq!(locate(0), (0, 0));
        assert_eq!(locate(1023), (0, 1023));
        assert_eq!(locate(1024), (1, 0));
        assert_eq!(locate(3071), (1, 2047));
        assert_eq!(locate(3072), (2, 0));
        assert_eq!(locate(7167), (2, 4095));
        assert_eq!(locate(7168), (3, 0));
    }

    #[test]
    fn arena_push_get_across_chunk_boundaries() {
        let arena: AppendArena<usize> = AppendArena::new();
        for value in 0..5000 {
            assert_eq!(arena.push(value), value);
        }
        assert_eq!(arena.len(), 5000);
        for index in [0usize, 1023, 1024, 2047, 2048, 4095, 4096, 4999] {
            assert_eq!(*arena.get(index), index);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn arena_rejects_unpublished_index() {
        let arena: AppendArena<u32> = AppendArena::new();
        arena.push(7);
        let _ = arena.get(1);
    }

    #[test]
    fn arena_drops_owned_entries() {
        // Box<[u32]> entries must be dropped with the arena (miri-style
        // leak check is out of scope; this exercises the Drop path).
        let arena: AppendArena<Box<[u32]>> = AppendArena::new();
        for k in 0..100u32 {
            arena.push(vec![k; 3].into_boxed_slice());
        }
        assert_eq!(&arena.get(42)[..], &[42, 42, 42]);
    }

    #[test]
    fn concurrent_pushes_stay_dense_and_readable() {
        let arena: Arc<AppendArena<usize>> = Arc::new(AppendArena::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let arena = Arc::clone(&arena);
                scope.spawn(move || {
                    for _ in 0..2000 {
                        let index = arena.push(0);
                        // Own slot readable immediately.
                        assert_eq!(*arena.get(index), 0);
                    }
                });
            }
        });
        assert_eq!(arena.len(), 8000);
    }

    #[test]
    fn interning_is_a_pure_function_of_the_value() {
        let store = SharedTddStore::new();
        let a = store.intern_weight(C64::new(0.25, -0.75));
        let b = store.intern_weight(C64::new(0.25 + 1e-12, -0.75 + 1e-12));
        assert_eq!(a, b, "values in one grid cell must merge");
        let va = store.weight_value(a);
        assert!((va - C64::new(0.25, -0.75)).abs() <= 5e-12);

        // A second store built in any other order maps the same inputs
        // to the same *values* (ids may differ, values may not).
        let other = SharedTddStore::new();
        let _noise = other.intern_weight(C64::new(0.5, 0.5));
        let c = other.intern_weight(C64::new(0.25, -0.75));
        assert_eq!(other.weight_value(c), va, "snapping must be canonical");
    }

    #[test]
    fn zero_and_one_stay_exact() {
        let store = SharedTddStore::new();
        assert_eq!(store.intern_weight(C64::ZERO), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::new(5e-11, -5e-11)), WeightId::ZERO);
        assert_eq!(store.intern_weight(C64::ONE), WeightId::ONE);
        assert_eq!(store.weight_value(WeightId::ONE), C64::ONE);
        assert_eq!(store.weight_value(WeightId::ZERO), C64::ZERO);
    }

    #[test]
    fn huge_weights_intern_exactly() {
        let store = SharedTddStore::new();
        let big = C64::new(3.5e12, -1.0);
        let a = store.intern_weight(big);
        let b = store.intern_weight(big);
        assert_eq!(a, b);
        assert_eq!(store.weight_value(a), big, "huge values are kept exact");
        assert_ne!(store.intern_weight(C64::new(3.5e12 + 1.0, -1.0)), a);
    }

    #[test]
    fn elim_sets_are_globally_consistent() {
        let store = SharedTddStore::new();
        let a = store.intern_elim_set(vec![1, 4, 9]);
        let b = store.intern_elim_set(vec![1, 4, 9]);
        let c = store.intern_elim_set(vec![1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.elim_set(a), &[1, 4, 9]);
    }

    #[test]
    fn cross_worker_hits_are_attributed() {
        let store = SharedTddStore::new();
        let w0 = store.register_worker();
        let w1 = store.register_worker();
        let one = WeightId::ONE;
        let half = store.intern_weight(C64::real(0.5));
        let key = Node {
            var: 3,
            low: Edge {
                node: NodeId::TERMINAL,
                weight: one,
            },
            high: Edge {
                node: NodeId::TERMINAL,
                weight: half,
            },
        };
        let id0 = store.unique_node(key, w0);
        let id_self = store.unique_node(key, w0);
        let id1 = store.unique_node(key, w1);
        assert_eq!(id0, id_self);
        assert_eq!(id0, id1);
        let stats = store.stats();
        assert_eq!(stats.nodes_created, 1);
        assert_eq!(stats.unique_hits, 2);
        assert_eq!(stats.cross_unique_hits, 1, "only w1's hit crosses");
    }
}
