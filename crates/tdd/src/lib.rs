//! Tensor Decision Diagrams (TDDs).
//!
//! A TDD (Hong et al., arXiv:2009.02618) represents a tensor over binary
//! index variables as a reduced, normalized, hash-consed decision diagram:
//! each internal node branches on one variable (under a fixed global
//! order), edges carry complex weights, and structurally identical
//! sub-diagrams are shared through a unique table. Tensor-network
//! contraction then works directly on the diagrams, with a *computed
//! table* memoizing every `add`/`cont` sub-call — the optimisation whose
//! effect the paper quantifies in Table II.
//!
//! The engine lives in [`TddManager`]:
//!
//! * [`weight`] — tolerance-canonical interning of complex edge weights,
//!   so that edges are two `u32`s and table lookups are exact;
//! * [`manager`] — normalization rules and the `TddStore` storage
//!   abstraction: a private per-manager arena + unique table (the
//!   sequential fast path) or a handle onto a shared concurrent store;
//! * [`store`] — the [`SharedTddStore`]: a lock-striped unique table and
//!   sharded canonical weight interning over append-only arenas, so the
//!   worker managers of a parallel run hash-cons sub-diagrams *across*
//!   threads and produce bit-identical results whatever the scheduling;
//! * [`ops`] — pointwise addition and contraction (multiply + sum out a
//!   set of variables, with ×2 factors for variables skipped by both
//!   operands);
//! * [`convert`] — dense tensor ↔ TDD conversion;
//! * [`driver`] — executes a [`qaec_tensornet::ContractionPlan`] on TDDs
//!   sequentially and records the node-count statistics reported in the
//!   paper's Table I (deadlines are honoured *inside* steps via an
//!   amortised probe in the `cont` recursion);
//! * [`par_driver`] — the plan-level parallel driver: a DAG scheduler
//!   dispatching independent plan steps critical-path-first to a worker
//!   pool over one shared store, bit-identical to sequential execution
//!   for every worker count;
//! * [`lanes`] — the multi-lane engine: one contraction traversal
//!   carrying `L` structurally-identical diagrams whose weights differ
//!   per lane (a noise-sweep batch), with per-lane canonical snapping so
//!   every lane stays bit-identical to its scalar shared-store run, and
//!   divergence detection that falls back to the scalar path whenever a
//!   value-dependent decision is not lane-uniform;
//! * [`fxhash`] — the dependency-free Fx-style hasher behind every hot
//!   table (unique, computed, interning);
//! * [`gc`] — mark-compact garbage collection for long Algorithm I runs
//!   (a documented no-op on shared stores, whose arenas are append-only).
//!
//! # Example
//!
//! ```
//! use qaec_math::{C64, Matrix};
//! use qaec_tensornet::{IndexId, Tensor, TensorNetwork, Strategy, VarOrder};
//! use qaec_tdd::TddManager;
//!
//! // tr(H·H) = 2 on the decision-diagram backend.
//! let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
//! let h = Matrix::from_rows(&[vec![s, s], vec![s, -s]]);
//! let mut net = TensorNetwork::new();
//! net.add(Tensor::from_matrix(&h, &[IndexId(1)], &[IndexId(0)]));
//! net.add(Tensor::from_matrix(&h, &[IndexId(0)], &[IndexId(1)]));
//! let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
//! let plan = net.plan(Strategy::MinFill);
//!
//! let mut manager = TddManager::new();
//! let result = qaec_tdd::driver::contract_network(&mut manager, &net, &plan, &order);
//! let value = manager.edge_scalar(result.root).expect("closed network");
//! assert!((value - C64::real(2.0)).abs() < 1e-9);
//! ```

pub mod convert;
pub mod dot;
pub mod driver;
pub mod fxhash;
pub mod gc;
pub mod lanes;
pub mod manager;
pub mod ops;
pub mod par_driver;
pub mod store;
pub mod sync;
pub mod weight;

#[cfg(all(test, qaec_model))]
mod model_tests;

pub use driver::{
    contract_network, contract_network_opts, ContractionResult, DriverOptions, DriverTimeout,
};
pub use lanes::{contract_network_lanes, LaneDivergence, LaneError, LaneOutcome};
pub use manager::{ContCacheKey, Edge, NodeId, TddManager, TddStats, DEADLINE_PROBE_INTERVAL};
pub use par_driver::{contract_network_parallel, run_on_workers, ParallelOptions, ParallelOutcome};
pub use store::{SharedTddStore, StoreEpoch};
pub use weight::{WeightId, WeightTable};
