//! Synchronisation shim: `std::sync` by default, the vendored `modelcheck`
//! model types under `--cfg qaec_model` (the loom pattern).
//!
//! Production code in this crate (and in `qaec-core`, which re-imports this
//! module) takes its `Mutex` and atomics from here instead of `std::sync`,
//! so the exact protocols that ship — same call sites, same memory orderings
//! — can be driven through the deterministic interleaving explorer:
//!
//! ```text
//! RUSTFLAGS="--cfg qaec_model" cargo test -p qaec-tdd model_
//! ```
//!
//! Outside a model execution the `modelcheck` types pass straight through to
//! `std` with the caller's orderings, so the regular test suite also passes
//! under the cfg. `std::sync::Condvar` (used by the worker-pool scheduler in
//! `par_driver`) has no model twin: condvar protocols are out of the model
//! checker's scope and keep `std::sync` directly.

#[cfg(not(qaec_model))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(not(qaec_model))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(qaec_model)]
pub use modelcheck::sync::{Mutex, MutexGuard};

#[cfg(qaec_model)]
pub mod atomic {
    pub use modelcheck::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}
