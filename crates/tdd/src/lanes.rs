//! The multi-lane TDD engine: one contraction traversal carrying `L`
//! structurally-identical diagrams whose weights differ per lane.
//!
//! A noise sweep re-contracts the *same* network shape — same plan, same
//! elimination sets, same node skeleton — with only the Kraus weights
//! changing between points. [`contract_network_lanes`] exploits that: an
//! edge weight becomes a [`LaneC64`] lane vector (`[f64; L]` re/im per
//! lane), so hashing, memoization and node construction are paid once
//! for `L` sweep points instead of once per point.
//!
//! ## The determinism invariant
//!
//! The scalar reference path is the plan driver over a shared store with
//! **scoped** interning ([`crate::TddManager::new_shared_scoped`]): each
//! leaf conversion and each plan step is one weight scope, values glue
//! to the scope's first-seen representative within tolerance, and
//! representatives store their exact bits. The lane engine runs the
//! **same glue per lane** — per-lane representative maps, reset at the
//! same scope boundaries — so as long as every control-flow decision the
//! scalar engine takes is *lane-uniform*, each lane of the lane run is
//! bit-identical to the corresponding scalar run.
//!
//! Where lanes would have to disagree — one lane's weight gluing to
//! zero while another's does not, one lane preferring the low child's
//! normalisation weight while another prefers the high's, operand order
//! in `add` differing between lanes, a scalar id fast path (`x·1`,
//! `x/1`, `x/x`) firing in some lanes only — the engine does not guess:
//! it aborts the whole batch with [`LaneDivergence`] and the caller
//! falls back to the scalar per-point replay. Divergence is a *performance*
//! event, never a correctness event. (One residual case is undetectable
//! in principle: two per-lane subgraphs coinciding structurally under
//! *different* lane nodes. For sweeps over distinct noise strengths the
//! weights involved differ lane-to-lane, which is exactly what the
//! detectable checks key on; the end-to-end bit-identity tests in
//! `tests/sweep_lanes.rs` pin the behaviour.)
//!
//! The lane manager is private and single-threaded: a batch is one
//! sequential plan execution, so lane results are independent of
//! `threads` by construction.

use crate::fxhash::FxHashMap;
use crate::manager::{TddStats, DEADLINE_PROBE_INTERVAL};
use qaec_math::{LaneC64, C64};
use qaec_tensornet::{ContractionPlan, PlanStep, Tensor, TensorNetwork, VarOrder};
use std::time::Instant;

/// The lane batch hit a control-flow decision that is not lane-uniform;
/// the caller must replay the batch on the scalar reference path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaneDivergence {
    /// Which uniformity check fired (diagnostic only).
    pub reason: &'static str,
}

impl std::fmt::Display for LaneDivergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane divergence: {}", self.reason)
    }
}

impl std::error::Error for LaneDivergence {}

/// Why a lane contraction stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneError {
    /// Lanes disagreed on a value-dependent decision — fall back to the
    /// scalar per-point path.
    Divergence(LaneDivergence),
    /// The armed deadline expired mid-contraction.
    Timeout,
}

impl From<LaneDivergence> for LaneError {
    fn from(d: LaneDivergence) -> Self {
        LaneError::Divergence(d)
    }
}

impl std::fmt::Display for LaneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaneError::Divergence(d) => d.fmt(f),
            LaneError::Timeout => write!(f, "contraction deadline exceeded"),
        }
    }
}

impl std::error::Error for LaneError {}

#[inline]
fn diverge(reason: &'static str) -> LaneDivergence {
    LaneDivergence { reason }
}

/// Result of one lane batch: the closed network's scalar per lane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaneOutcome<const L: usize> {
    /// The contracted scalar of lane `i`'s network.
    pub scalars: [C64; L],
    /// Largest intermediate *lane-diagram* node count (one shared
    /// skeleton for all lanes — not comparable to scalar `max_nodes`).
    pub max_nodes: usize,
    /// Plan steps executed.
    pub steps: usize,
    /// Lane-manager statistics (one traversal for the whole batch).
    pub stats: TddStats,
}

// Handles. The lane manager owns a private arena, so plain indices —
// slot 0 is the terminal node / the all-zero weight, slot 1 the
// all-one weight, mirroring the scalar stores.
const TERMINAL: u32 = 0;
const TERMINAL_VAR: u32 = u32::MAX;
const W_ZERO: u32 = 0;
const W_ONE: u32 = 1;

/// An edge of the lane diagram: node handle plus lane-weight handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct LaneEdge {
    node: u32,
    weight: u32,
}

impl LaneEdge {
    const ZERO: LaneEdge = LaneEdge {
        node: TERMINAL,
        weight: W_ZERO,
    };
    const ONE: LaneEdge = LaneEdge {
        node: TERMINAL,
        weight: W_ONE,
    };
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct LaneNode {
    var: u32,
    low: LaneEdge,
    high: LaneEdge,
}

/// Bit pattern of the exact one (`1.0`); the exact `+0.0` is bit zero.
const ONE_BITS: u64 = 0x3FF0_0000_0000_0000;

/// One lane's scope representatives: bucket → first-seen values.
type GlueBuckets = FxHashMap<(i64, i64), Vec<(f64, f64)>>;

/// One lane's mirror of the scoped scalar intern
/// (`crate::manager::SharedInterning::Scoped`): zero box → exact zero,
/// already-resolved bits → their glued value, tolerance match against a
/// scope representative → the representative's exact bits, else the
/// value becomes the scope's representative for its neighbourhood.
/// Returns the value the scalar run would *store* — gluing state (and
/// therefore representative election order) is per lane, exactly as `L`
/// independent scalar runs would evolve it.
fn glue_component(
    glue: &mut GlueBuckets,
    resolved: &mut FxHashMap<(u64, u64), (f64, f64)>,
    tol: f64,
    re: f64,
    im: f64,
) -> (f64, f64) {
    if re.abs() <= tol && im.abs() <= tol {
        return (0.0, 0.0);
    }
    let bits = (re.to_bits(), im.to_bits());
    if let Some(&v) = resolved.get(&bits) {
        return v;
    }
    // Bucket width 2·tol: the 3×3 probe covers every representative
    // within tol (Chebyshev); keys saturate for huge values, so the
    // probe saturates too — both exactly as in the scalar engine.
    let w = 2.0 * tol;
    let (kr, ki) = ((re / w).round() as i64, (im / w).round() as i64);
    for dr in -1..=1i64 {
        for di in -1..=1i64 {
            if let Some(reps) = glue.get(&(kr.saturating_add(dr), ki.saturating_add(di))) {
                for &(vr, vi) in reps {
                    if (vr - re).abs() <= tol && (vi - im).abs() <= tol {
                        resolved.insert(bits, (vr, vi));
                        return (vr, vi);
                    }
                }
            }
        }
    }
    glue.entry((kr, ki)).or_default().push((re, im));
    resolved.insert(bits, (re, im));
    (re, im)
}

/// The private, single-threaded lane store + computed tables.
struct LaneManager<const L: usize> {
    tol: f64,
    /// Per-lane scope representatives (bucket → first-seen values), the
    /// lane mirror of the scoped scalar glue. Reset per weight scope.
    glue: Vec<GlueBuckets>,
    /// Per-lane bits → glued value, the probe short-circuit. Reset per
    /// weight scope.
    resolved: Vec<FxHashMap<(u64, u64), (f64, f64)>>,
    weights: Vec<LaneC64<L>>,
    weight_map: FxHashMap<[(u64, u64); L], u32>,
    nodes: Vec<LaneNode>,
    unique: FxHashMap<LaneNode, u32>,
    add_cache: FxHashMap<(LaneEdge, LaneEdge), LaneEdge>,
    cont_cache: FxHashMap<(u32, u32, u32, u32), LaneEdge>,
    elim_sets: Vec<Box<[u32]>>,
    elim_ids: FxHashMap<Vec<u32>, u32>,
    deadline: Option<Instant>,
    probe_budget: u32,
    expired: bool,
    stats: TddStats,
}

impl<const L: usize> LaneManager<L> {
    fn with_tolerance(tol: f64) -> Self {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        let mut m = LaneManager {
            tol,
            glue: (0..L).map(|_| FxHashMap::default()).collect(),
            resolved: (0..L).map(|_| FxHashMap::default()).collect(),
            weights: Vec::new(),
            weight_map: FxHashMap::default(),
            nodes: Vec::new(),
            unique: FxHashMap::default(),
            add_cache: FxHashMap::default(),
            cont_cache: FxHashMap::default(),
            elim_sets: Vec::new(),
            elim_ids: FxHashMap::default(),
            deadline: None,
            probe_budget: DEADLINE_PROBE_INTERVAL,
            expired: false,
            stats: TddStats::default(),
        };
        m.nodes.push(LaneNode {
            var: TERMINAL_VAR,
            low: LaneEdge::ZERO,
            high: LaneEdge::ZERO,
        });
        m.weights.push(LaneC64::ZERO);
        m.weights.push(LaneC64::splat(C64::ONE));
        m
    }

    /// Opens a new weight scope, mirroring
    /// [`crate::TddManager::begin_weight_scope`]: per-lane glue state and
    /// the computed tables reset together (cached entries embed the
    /// outgoing scope's representative-glued weights). Interned weights
    /// and nodes persist — they mirror the shared store's global
    /// exact-bits family.
    fn begin_scope(&mut self) {
        for g in &mut self.glue {
            g.clear();
        }
        for r in &mut self.resolved {
            r.clear();
        }
        self.add_cache.clear();
        self.cont_cache.clear();
    }

    fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.probe_budget = DEADLINE_PROBE_INTERVAL;
        self.expired = false;
    }

    #[inline]
    fn deadline_exceeded(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.expired {
            return true;
        }
        self.probe_budget -= 1;
        if self.probe_budget == 0 {
            self.probe_budget = DEADLINE_PROBE_INTERVAL;
            if Instant::now() >= deadline {
                self.expired = true;
                return true;
            }
        }
        false
    }

    /// Interns a lane weight after per-lane scope gluing.
    ///
    /// The zero box must be lane-uniform: the scalar `is_zero` fast
    /// paths are *structural* (a zero weight makes the whole edge the
    /// terminal zero edge and guards `wdiv`), so a lane that glues to
    /// zero while another does not cannot be represented.
    ///
    /// A lane that glues to *exactly* `(1.0, +0.0)` maps to the scalar
    /// id `ONE` in that lane's reference run — the shared store
    /// pre-seeds the exact-one bits onto `WeightId::ONE`, so the
    /// exact-bits find-or-insert returns `ONE` for them. All lanes one
    /// is therefore `W_ONE`. *Mixed* exact-one lanes are representable
    /// but poisoned: the scalar `x·1`, `x/1`, `x/x` id fast paths would
    /// fire in the one-lanes only, returning the other operand's stored
    /// bits *without re-gluing*, while a computed product/quotient runs
    /// through the glue and may land on a different scope
    /// representative. `wmul`/`wdiv` diverge lazily when such a weight
    /// reaches an actual computation (see [`Self::mixed_exact_one`]).
    fn intern(&mut self, v: LaneC64<L>) -> Result<u32, LaneDivergence> {
        debug_assert!(v.is_finite(), "non-finite lane weight");
        let mut glued = LaneC64::ZERO;
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for i in 0..L {
            let (re, im) = glue_component(
                &mut self.glue[i],
                &mut self.resolved[i],
                self.tol,
                v.re[i],
                v.im[i],
            );
            glued.re[i] = re;
            glued.im[i] = im;
            if re.to_bits() == 0 && im.to_bits() == 0 {
                zeros += 1;
            } else if re.to_bits() == ONE_BITS && im.to_bits() == 0 {
                ones += 1;
            }
        }
        if zeros == L {
            return Ok(W_ZERO);
        }
        if zeros > 0 {
            return Err(diverge("some lanes glue to zero"));
        }
        if ones == L {
            return Ok(W_ONE);
        }
        let key: [(u64, u64); L] =
            std::array::from_fn(|i| (glued.re[i].to_bits(), glued.im[i].to_bits()));
        if let Some(&id) = self.weight_map.get(&key) {
            return Ok(id);
        }
        let id = self.weights.len() as u32;
        self.weights.push(glued);
        self.weight_map.insert(key, id);
        Ok(id)
    }

    #[inline]
    fn wvalue(&self, w: u32) -> LaneC64<L> {
        self.weights[w as usize]
    }

    /// True when *some* (but not all) lanes of `w` hold the exact one.
    /// Those lanes' scalar runs would take an id fast path (`x·1`,
    /// `x/1`) that skips the glue, while the other lanes compute and
    /// re-glue — lane-uniform computation cannot reproduce both.
    #[inline]
    fn mixed_exact_one(&self, w: u32) -> bool {
        if w == W_ONE {
            return false;
        }
        let v = self.wvalue(w);
        (0..L).any(|i| v.re[i].to_bits() == ONE_BITS && v.im[i].to_bits() == 0)
    }

    /// Interned product — handle fast paths are exact because stored
    /// lane values carry the scalar runs' exact bits (ZERO/ONE handles
    /// ⟺ every lane is the exact zero/one ⟺ every scalar id is
    /// ZERO/ONE), mirroring the shared store's `wmul`. Mixed exact-one
    /// operands diverge: their scalar fast path fires per lane.
    fn wmul(&mut self, a: u32, b: u32) -> Result<u32, LaneDivergence> {
        if a == W_ZERO || b == W_ZERO {
            return Ok(W_ZERO);
        }
        if a == W_ONE {
            return Ok(b);
        }
        if b == W_ONE {
            return Ok(a);
        }
        if self.mixed_exact_one(a) || self.mixed_exact_one(b) {
            return Err(diverge("some lanes multiply by the exact one"));
        }
        let v = self.wvalue(a) * self.wvalue(b);
        self.intern(v)
    }

    fn wadd(&mut self, a: u32, b: u32) -> Result<u32, LaneDivergence> {
        if a == W_ZERO {
            return Ok(b);
        }
        if b == W_ZERO {
            return Ok(a);
        }
        let v = self.wvalue(a) + self.wvalue(b);
        self.intern(v)
    }

    fn wdiv(&mut self, a: u32, b: u32) -> Result<u32, LaneDivergence> {
        assert!(b != W_ZERO, "division by the zero weight");
        if a == W_ZERO {
            return Ok(W_ZERO);
        }
        if b == W_ONE {
            return Ok(a);
        }
        if a == b {
            // Same handle ⇒ every lane's stored bits are equal ⇒ every
            // scalar run's ids are equal (exact-bits interning is
            // globally pure), so every scalar run takes the `x/x ⇒ ONE`
            // fast path too.
            return Ok(W_ONE);
        }
        if self.mixed_exact_one(b) {
            return Err(diverge("some lanes divide by the exact one"));
        }
        // Handles differ, but a single lane's bits may still coincide —
        // that lane's scalar run would return `ONE` via the id check
        // while the computed quotient re-glues. (A mixed one in `a` is
        // fine: the scalar `wdiv` has no `a.is_one()` shortcut.)
        let (va, vb) = (self.wvalue(a), self.wvalue(b));
        for i in 0..L {
            if va.re[i].to_bits() == vb.re[i].to_bits() && va.im[i].to_bits() == vb.im[i].to_bits()
            {
                return Err(diverge("some lanes divide bit-equal weights"));
            }
        }
        let v = va / vb;
        self.intern(v)
    }

    fn wscale_real(&mut self, a: u32, factor: f64) -> Result<u32, LaneDivergence> {
        if factor == 0.0 {
            return Ok(W_ZERO);
        }
        if a == W_ZERO {
            return Ok(a);
        }
        let v = self.wvalue(a).scale(factor);
        self.intern(v)
    }

    #[inline]
    fn var(&self, n: u32) -> u32 {
        self.nodes[n as usize].var
    }

    fn terminal(&mut self, v: LaneC64<L>) -> Result<LaneEdge, LaneDivergence> {
        Ok(LaneEdge {
            node: TERMINAL,
            weight: self.intern(v)?,
        })
    }

    /// The scalar-engine node constructor, with its two value-dependent
    /// decisions checked for lane uniformity: the low/high reduction and
    /// the normalisation-weight pick.
    fn make_node(
        &mut self,
        var: u32,
        low: LaneEdge,
        high: LaneEdge,
    ) -> Result<LaneEdge, LaneDivergence> {
        debug_assert!(
            self.var(low.node) > var && self.var(high.node) > var,
            "child variable above parent in the order"
        );
        if low == high {
            // Canonical interning: equal handles mean every lane's pair
            // is equal, so every scalar run reduces too.
            return Ok(low);
        }
        if low.weight == W_ZERO && high.weight == W_ZERO {
            return Ok(LaneEdge::ZERO);
        }
        if low.node == high.node && low.weight != high.weight {
            // Handles differ, but a single lane's weights may still
            // coincide — that lane's scalar run would reduce the node
            // away while the lane diagram keeps it.
            let (vl, vh) = (self.wvalue(low.weight), self.wvalue(high.weight));
            for i in 0..L {
                if vl.re[i].to_bits() == vh.re[i].to_bits()
                    && vl.im[i].to_bits() == vh.im[i].to_bits()
                {
                    return Err(diverge("some lanes reduce equal children"));
                }
            }
        }
        let ml = self.wvalue(low.weight).abs();
        let mh = self.wvalue(high.weight).abs();
        let mut pick_low_all = true;
        let mut pick_high_all = true;
        for i in 0..L {
            if ml[i] + self.tol >= mh[i] {
                pick_high_all = false;
            } else {
                pick_low_all = false;
            }
        }
        let norm = if pick_low_all {
            low.weight
        } else if pick_high_all {
            high.weight
        } else {
            return Err(diverge("lanes disagree on the normalisation weight"));
        };
        let new_low = LaneEdge {
            node: low.node,
            weight: if low.weight == norm {
                W_ONE
            } else {
                self.wdiv(low.weight, norm)?
            },
        };
        let new_high = LaneEdge {
            node: high.node,
            weight: if high.weight == norm {
                W_ONE
            } else {
                self.wdiv(high.weight, norm)?
            },
        };
        let key = LaneNode {
            var,
            low: new_low,
            high: new_high,
        };
        let node = match self.unique.get(&key) {
            Some(&id) => {
                self.stats.unique_hits += 1;
                id
            }
            None => {
                let id = self.nodes.len() as u32;
                self.nodes.push(key);
                self.unique.insert(key, id);
                self.stats.nodes_created += 1;
                self.stats.peak_nodes = self.stats.peak_nodes.max(self.nodes.len() - 1);
                id
            }
        };
        Ok(LaneEdge { node, weight: norm })
    }

    fn cofactors(&mut self, e: LaneEdge, var: u32) -> Result<(LaneEdge, LaneEdge), LaneDivergence> {
        let node = self.nodes[e.node as usize];
        if e.node == TERMINAL || node.var > var {
            return Ok((e, e));
        }
        debug_assert_eq!(node.var, var, "edge root above requested variable");
        let low = LaneEdge {
            node: node.low.node,
            weight: self.wmul(e.weight, node.low.weight)?,
        };
        let high = LaneEdge {
            node: node.high.node,
            weight: self.wmul(e.weight, node.high.weight)?,
        };
        Ok((low, high))
    }

    fn intern_elim_set(&mut self, levels: Vec<u32>) -> u32 {
        debug_assert!(levels.windows(2).all(|w| w[0] < w[1]), "levels sorted");
        if let Some(&id) = self.elim_ids.get(&levels) {
            return id;
        }
        let id = self.elim_sets.len() as u32;
        self.elim_sets.push(levels.clone().into_boxed_slice());
        self.elim_ids.insert(levels, id);
        id
    }

    /// `ops::try_add`, lane form. Operand order is decided by weight
    /// *values*, so it must be lane-uniform; exact-value ties fall back
    /// to lane handles, where either order is value-symmetric (same
    /// argument as the scalar engine's handle tie-break).
    fn add(&mut self, a: LaneEdge, b: LaneEdge) -> Result<LaneEdge, LaneError> {
        self.stats.add_calls += 1;
        if self.deadline_exceeded() {
            return Err(LaneError::Timeout);
        }
        if a.weight == W_ZERO {
            return Ok(b);
        }
        if b.weight == W_ZERO {
            return Ok(a);
        }
        if a.node == b.node {
            let w = self.wadd(a.weight, b.weight)?;
            if w == W_ZERO {
                return Ok(LaneEdge::ZERO);
            }
            return Ok(LaneEdge {
                node: a.node,
                weight: w,
            });
        }
        let (a, b) = {
            let va = self.wvalue(a.weight);
            let vb = self.wvalue(b.weight);
            let mut any_lt = false;
            let mut any_gt = false;
            for i in 0..L {
                match vb.re[i]
                    .total_cmp(&va.re[i])
                    .then(vb.im[i].total_cmp(&va.im[i]))
                {
                    std::cmp::Ordering::Less => any_lt = true,
                    std::cmp::Ordering::Greater => any_gt = true,
                    std::cmp::Ordering::Equal => {}
                }
            }
            let swap = match (any_lt, any_gt) {
                (true, true) => return Err(diverge("lanes disagree on add operand order").into()),
                (true, false) => true,
                (false, true) => false,
                (false, false) => (b.node, b.weight) < (a.node, a.weight),
            };
            if swap {
                (b, a)
            } else {
                (a, b)
            }
        };
        let ratio = self.wdiv(b.weight, a.weight)?;
        let na = LaneEdge {
            node: a.node,
            weight: W_ONE,
        };
        let nb = LaneEdge {
            node: b.node,
            weight: ratio,
        };
        let key = (na, nb);
        if let Some(&hit) = self.add_cache.get(&key) {
            self.stats.add_hits += 1;
            return Ok(LaneEdge {
                node: hit.node,
                weight: self.wmul(hit.weight, a.weight)?,
            });
        }
        let x = self.var(na.node).min(self.var(nb.node));
        let (a0, a1) = self.cofactors(na, x)?;
        let (b0, b1) = self.cofactors(nb, x)?;
        let low = self.add(a0, b0)?;
        let high = self.add(a1, b1)?;
        let result = self.make_node(x, low, high)?;
        self.add_cache.insert(key, result);
        Ok(LaneEdge {
            node: result.node,
            weight: self.wmul(result.weight, a.weight)?,
        })
    }

    /// `ops::cont_rec`, lane form. The id-based operand order is
    /// value-transparent exactly as in the scalar engine (both operands
    /// reduced to unit weight, symmetric recursion), so lane node ids
    /// differing from scalar node ids cannot change any value.
    fn cont_rec(
        &mut self,
        a: LaneEdge,
        b: LaneEdge,
        set_id: u32,
        k: usize,
    ) -> Result<LaneEdge, LaneError> {
        self.stats.cont_calls += 1;
        if self.deadline_exceeded() {
            return Err(LaneError::Timeout);
        }
        let w = self.wmul(a.weight, b.weight)?;
        if w == W_ZERO {
            return Ok(LaneEdge::ZERO);
        }
        if a.node == TERMINAL && b.node == TERMINAL {
            let remaining = self.elim_sets[set_id as usize].len() - k;
            let weight = self.wscale_real(w, (remaining as f64).exp2())?;
            return Ok(LaneEdge {
                node: TERMINAL,
                weight,
            });
        }
        let (na, nb) = if b.node < a.node {
            (b.node, a.node)
        } else {
            (a.node, b.node)
        };
        let key = (na, nb, set_id, k as u32);
        if let Some(&hit) = self.cont_cache.get(&key) {
            self.stats.cont_hits += 1;
            return Ok(LaneEdge {
                node: hit.node,
                weight: self.wmul(hit.weight, w)?,
            });
        }
        let x = self.var(na).min(self.var(nb));
        let mut kk = k;
        {
            let elim = &self.elim_sets[set_id as usize];
            while kk < elim.len() && elim[kk] < x {
                kk += 1;
            }
        }
        let skips = (kk - k) as f64;
        let ea = LaneEdge {
            node: na,
            weight: W_ONE,
        };
        let eb = LaneEdge {
            node: nb,
            weight: W_ONE,
        };
        let (a0, a1) = self.cofactors(ea, x)?;
        let (b0, b1) = self.cofactors(eb, x)?;
        let eliminate_x = {
            let elim = &self.elim_sets[set_id as usize];
            kk < elim.len() && elim[kk] == x
        };
        let mut result = if eliminate_x {
            let low = self.cont_rec(a0, b0, set_id, kk + 1)?;
            let high = self.cont_rec(a1, b1, set_id, kk + 1)?;
            self.add(low, high)?
        } else {
            let low = self.cont_rec(a0, b0, set_id, kk)?;
            let high = self.cont_rec(a1, b1, set_id, kk)?;
            self.make_node(x, low, high)?
        };
        if skips > 0.0 {
            result = LaneEdge {
                node: result.node,
                weight: self.wscale_real(result.weight, skips.exp2())?,
            };
        }
        self.cont_cache.insert(key, result);
        Ok(LaneEdge {
            node: result.node,
            weight: self.wmul(result.weight, w)?,
        })
    }

    /// `convert::from_tensor` over `L` same-shape tensors at once.
    fn convert_tensors(
        &mut self,
        tensors: [&Tensor; L],
        order: &VarOrder,
    ) -> Result<LaneEdge, LaneDivergence> {
        // One tensor = one weight scope, as in the scalar conversion.
        self.begin_scope();
        let sorted: Vec<Tensor> = tensors.iter().map(|t| t.sorted_by(order)).collect();
        debug_assert!(
            sorted.iter().all(|t| t.indices() == sorted[0].indices()),
            "lane tensors must share one index structure"
        );
        let levels: Vec<u32> = sorted[0]
            .indices()
            .iter()
            .map(|&i| order.level(i))
            .collect();
        let datas: [&[C64]; L] = std::array::from_fn(|i| sorted[i].data());
        self.build(datas, &levels)
    }

    fn build(&mut self, datas: [&[C64]; L], levels: &[u32]) -> Result<LaneEdge, LaneDivergence> {
        if levels.is_empty() {
            let mut v = LaneC64::ZERO;
            for (i, data) in datas.iter().enumerate() {
                v.re[i] = data[0].re;
                v.im[i] = data[0].im;
            }
            return self.terminal(v);
        }
        let half = datas[0].len() / 2;
        let lows: [&[C64]; L] = std::array::from_fn(|i| &datas[i][..half]);
        let highs: [&[C64]; L] = std::array::from_fn(|i| &datas[i][half..]);
        let low = self.build(lows, &levels[1..])?;
        let high = self.build(highs, &levels[1..])?;
        self.make_node(levels[0], low, high)
    }

    /// Distinct reachable lane-diagram nodes, including the terminal.
    fn node_count(&self, e: LaneEdge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if n != TERMINAL {
                let node = self.nodes[n as usize];
                stack.push(node.low.node);
                stack.push(node.high.node);
            }
        }
        seen.len()
    }
}

/// Contracts `L` structurally-identical networks in one plan execution.
///
/// `networks[i]` is lane `i`'s instantiation — same tensors in the same
/// slots with the same index structure, only the values differing (a
/// noise sweep batch). `tolerance` must match the scalar reference
/// store's ([`crate::SharedTddStore::tolerance`]), or the per-lane glue
/// stops replicating the reference values.
///
/// On success every `scalars[i]` is bit-identical to contracting
/// `networks[i]` alone over a shared store with scoped interning
/// ([`crate::TddManager::new_shared_scoped`]) with the same plan and
/// order. On [`LaneError::Divergence`] nothing useful was computed
/// and the caller replays the batch per point; on [`LaneError::Timeout`]
/// the armed `deadline` expired.
///
/// # Errors
///
/// [`LaneError::Divergence`] / [`LaneError::Timeout`] as above.
///
/// # Panics
///
/// Panics if `networks.len() != L`, the networks disagree on tensor
/// count, the plan does not match, or a network is left open (lane
/// contraction serves closed trace networks only).
pub fn contract_network_lanes<const L: usize>(
    tolerance: f64,
    networks: &[TensorNetwork],
    plan: &ContractionPlan,
    order: &VarOrder,
    deadline: Option<Instant>,
) -> Result<LaneOutcome<L>, LaneError> {
    assert_eq!(networks.len(), L, "expected {L} lane networks");
    let n_tensors = networks[0].tensors().len();
    assert!(
        networks.iter().all(|n| n.tensors().len() == n_tensors),
        "lane networks must agree on tensor count"
    );
    let mut m = LaneManager::<L>::with_tolerance(tolerance);
    m.set_deadline(deadline);

    let mut slots: Vec<Option<LaneEdge>> = Vec::with_capacity(plan.n_slots.max(n_tensors));
    for t in 0..n_tensors {
        let tensors: [&Tensor; L] = std::array::from_fn(|i| &networks[i].tensors()[t]);
        slots.push(Some(m.convert_tensors(tensors, order)?));
    }
    slots.resize(plan.n_slots.max(slots.len()), None);

    let mut max_nodes = slots
        .iter()
        .flatten()
        .map(|&e| m.node_count(e))
        .max()
        .unwrap_or(1);

    for step in &plan.steps {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                return Err(LaneError::Timeout);
            }
        }
        let result = match step {
            PlanStep::Contract {
                a,
                b,
                eliminate,
                result,
            } => {
                let ea = slots[*a].take().expect("operand a live");
                let eb = slots[*b].take().expect("operand b live");
                let mut levels: Vec<u32> = eliminate.iter().map(|&i| order.level(i)).collect();
                levels.sort_unstable();
                let set = m.intern_elim_set(levels);
                // One plan step = one weight scope, as in the scalar driver.
                m.begin_scope();
                let e = m.cont_rec(ea, eb, set, 0)?;
                slots[*result] = Some(e);
                e
            }
            PlanStep::SumOut {
                t,
                eliminate,
                result,
            } => {
                let et = slots[*t].take().expect("operand live");
                let mut levels: Vec<u32> = eliminate.iter().map(|&i| order.level(i)).collect();
                levels.sort_unstable();
                let set = m.intern_elim_set(levels);
                m.begin_scope();
                let e = m.cont_rec(et, LaneEdge::ONE, set, 0)?;
                slots[*result] = Some(e);
                e
            }
        };
        max_nodes = max_nodes.max(m.node_count(result));
    }

    let mut root = (0..slots.len())
        .rev()
        .find_map(|i| slots[i].take())
        .unwrap_or(LaneEdge::ONE);
    if plan.free_loops > 0 {
        // Fresh scope for the final scaling, as in the scalar driver.
        m.begin_scope();
        root = LaneEdge {
            node: root.node,
            weight: m.wscale_real(root.weight, (plan.free_loops as f64).exp2())?,
        };
    }
    assert_eq!(
        root.node, TERMINAL,
        "lane contraction expects a closed network"
    );
    let value = m.wvalue(root.weight);
    let scalars: [C64; L] = std::array::from_fn(|i| value.lane(i));
    Ok(LaneOutcome {
        scalars,
        max_nodes,
        steps: plan.steps.len(),
        stats: m.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{contract_network, SharedTddStore, TddManager};
    use qaec_math::Matrix;
    use qaec_tensornet::{IndexId, Strategy, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A closed random network shape: a ring of 2x2 matrices, scaled per
    /// lane so lane values differ but structure does not.
    fn ring(n: usize, scale: f64, rng_seed: u64) -> TensorNetwork {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut net = TensorNetwork::new();
        for k in 0..n {
            let input = IndexId(k as u32);
            let output = IndexId(((k + 1) % n) as u32);
            let data: Vec<C64> = (0..4)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)) * scale)
                .collect();
            let m = Matrix::from_rows(&[vec![data[0], data[1]], vec![data[2], data[3]]]);
            net.add(Tensor::from_matrix(&m, &[output], &[input]));
        }
        net
    }

    fn scalar_reference(net: &TensorNetwork, plan: &ContractionPlan, order: &VarOrder) -> C64 {
        let store = SharedTddStore::new();
        let mut m = TddManager::new_shared_scoped(&store);
        let result = contract_network(&mut m, net, plan, order);
        m.edge_scalar(result.root).expect("closed network")
    }

    #[test]
    fn lane_batch_is_bitwise_identical_to_scalar_shared_store_runs() {
        const L: usize = 4;
        let n = 5;
        let order = VarOrder::from_sequence((0..n as u32).map(IndexId));
        // Same seed per lane → same structure; different scale → lane
        // weights differ everywhere (no accidental per-lane equality).
        let scales = [1.0, 0.875, 0.75, 0.625];
        let networks: Vec<TensorNetwork> = scales.iter().map(|&s| ring(n, s, 7)).collect();
        let plan = networks[0].plan(Strategy::MinFill);
        let outcome = contract_network_lanes::<L>(1e-10, &networks, &plan, &order, None)
            .expect("no divergence expected for distinct scales");
        for (i, net) in networks.iter().enumerate() {
            let reference = scalar_reference(net, &plan, &order);
            assert_eq!(
                outcome.scalars[i].re.to_bits(),
                reference.re.to_bits(),
                "lane {i} re"
            );
            assert_eq!(
                outcome.scalars[i].im.to_bits(),
                reference.im.to_bits(),
                "lane {i} im"
            );
        }
        assert!(outcome.max_nodes >= 1);
        assert_eq!(outcome.steps, plan.steps.len());
        assert!(outcome.stats.cont_calls > 0);
    }

    #[test]
    fn identical_lanes_reproduce_the_scalar_run() {
        const L: usize = 2;
        let n = 4;
        let order = VarOrder::from_sequence((0..n as u32).map(IndexId));
        let networks: Vec<TensorNetwork> = (0..L).map(|_| ring(n, 1.0, 11)).collect();
        let plan = networks[0].plan(Strategy::Sequential);
        let outcome =
            contract_network_lanes::<L>(1e-10, &networks, &plan, &order, None).expect("uniform");
        let reference = scalar_reference(&networks[0], &plan, &order);
        for lane in outcome.scalars {
            assert_eq!(lane.re.to_bits(), reference.re.to_bits());
            assert_eq!(lane.im.to_bits(), reference.im.to_bits());
        }
    }

    #[test]
    fn mixed_zero_lanes_diverge_instead_of_guessing() {
        const L: usize = 2;
        // Lane 0 carries a zero tensor, lane 1 a non-zero one: the very
        // first intern sees a mixed zero mask and must refuse.
        let mut zero_net = TensorNetwork::new();
        let mut one_net = TensorNetwork::new();
        let z = Matrix::from_rows(&[vec![C64::ZERO, C64::ZERO], vec![C64::ZERO, C64::ZERO]]);
        let o = Matrix::from_rows(&[vec![C64::ONE, C64::ZERO], vec![C64::ZERO, C64::ONE]]);
        zero_net.add(Tensor::from_matrix(&z, &[IndexId(0)], &[IndexId(1)]));
        one_net.add(Tensor::from_matrix(&o, &[IndexId(0)], &[IndexId(1)]));
        zero_net.close_index(IndexId(0));
        zero_net.close_index(IndexId(1));
        one_net.close_index(IndexId(0));
        one_net.close_index(IndexId(1));
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let plan = zero_net.plan(Strategy::Sequential);
        let result = contract_network_lanes::<L>(1e-10, &[zero_net, one_net], &plan, &order, None);
        assert!(
            matches!(result, Err(LaneError::Divergence(_))),
            "mixed zero/non-zero lanes must diverge, got {result:?}"
        );
    }

    #[test]
    fn expired_deadline_aborts_the_lane_contraction() {
        const L: usize = 2;
        let n = 6;
        let order = VarOrder::from_sequence((0..n as u32).map(IndexId));
        let networks: Vec<TensorNetwork> = [1.0, 0.5].iter().map(|&s| ring(n, s, 3)).collect();
        let plan = networks[0].plan(Strategy::MinFill);
        let expired = Instant::now() - std::time::Duration::from_millis(1);
        let result = contract_network_lanes::<L>(1e-10, &networks, &plan, &order, Some(expired));
        assert_eq!(result.unwrap_err(), LaneError::Timeout);
    }

    #[test]
    fn glue_matches_the_scoped_scalar_stored_values() {
        // Interning the same value sequence through a single-lane
        // manager and through a scoped shared-store manager must store
        // identical bits: zero box, fresh representatives, round-off
        // twins that glue to an earlier representative, the exact one,
        // and huge values (exact bits, no grid in the scoped family).
        let store = SharedTddStore::new();
        let mut scalar = TddManager::new_shared_scoped(&store);
        let mut lanes = LaneManager::<1>::with_tolerance(store.tolerance());
        let tol = store.tolerance();
        let sequence = [
            C64::new(5e-11, -5e-11),
            C64::new(0.25, -0.75),
            C64::new(0.25 + 0.4 * tol, -0.75 - 0.4 * tol), // glues to the rep above
            C64::new(1.0 + 1e-12, -1e-13),                 // a rep near one, not one
            C64::ONE,
            C64::new(3.5e12, -1.0),
            C64::new(-0.125, 0.5),
        ];
        for z in sequence {
            let scalar_id = scalar.intern_weight(z);
            let reference = scalar.weight_value(scalar_id);
            let lane_id = lanes.intern(LaneC64::splat(z)).expect("one lane");
            let stored = lanes.wvalue(lane_id);
            assert_eq!(stored.re[0].to_bits(), reference.re.to_bits(), "{z} re");
            assert_eq!(stored.im[0].to_bits(), reference.im.to_bits(), "{z} im");
            // Handle classes must match too: the scalar ZERO/ONE ids
            // are exactly the lane W_ZERO/W_ONE handles.
            assert_eq!(lane_id == W_ZERO, scalar_id == crate::WeightId::ZERO);
            assert_eq!(lane_id == W_ONE, scalar_id == crate::WeightId::ONE);
        }
        // A new scope forgets the representatives on both sides.
        scalar.begin_weight_scope();
        lanes.begin_scope();
        let z = C64::new(0.25 + 0.4 * tol, -0.75 - 0.4 * tol);
        let scalar_id = scalar.intern_weight(z);
        let reference = scalar.weight_value(scalar_id);
        let lane_id = lanes.intern(LaneC64::splat(z)).expect("one lane");
        let stored = lanes.wvalue(lane_id);
        assert_eq!(stored.re[0].to_bits(), reference.re.to_bits());
        assert_eq!(reference.re, z.re, "fresh scope: the twin is its own rep");
    }

    #[test]
    fn mixed_exact_one_lanes_diverge_on_arithmetic() {
        let mut m = LaneManager::<2>::with_tolerance(1e-10);
        let mut mixed = LaneC64::ZERO;
        mixed.re = [1.0, 0.5];
        mixed.im = [0.0, 0.0];
        let w = m.intern(mixed).expect("mixed exact-one lanes intern fine");
        assert!(m.mixed_exact_one(w));
        let mut other = LaneC64::ZERO;
        other.re = [0.25, 0.75];
        other.im = [0.125, -0.5];
        let o = m.intern(other).expect("plain weight");
        assert!(
            m.wmul(w, o).is_err(),
            "multiplying a mixed exact-one weight must diverge"
        );
        assert!(
            m.wdiv(o, w).is_err(),
            "dividing by a mixed exact-one weight must diverge"
        );
        // Dividing *by* a plain weight with a mixed-one numerator is
        // fine — the scalar wdiv has no a.is_one() shortcut.
        assert!(m.wdiv(w, o).is_ok());
    }

    #[test]
    fn bitwise_equal_lane_weights_under_distinct_handles_diverge_on_division() {
        let mut m = LaneManager::<2>::with_tolerance(1e-10);
        let mut a = LaneC64::ZERO;
        a.re = [0.25, 0.5];
        a.im = [0.0, 0.0];
        let wa = m.intern(a).expect("weight a");
        let mut b = LaneC64::ZERO;
        b.re = [0.25, 0.75];
        b.im = [0.0, 0.0];
        let wb = m.intern(b).expect("weight b");
        assert_ne!(wa, wb);
        assert!(
            m.wdiv(wa, wb).is_err(),
            "lane 0 divides bit-equal values (scalar takes x/x ⇒ ONE) — must diverge"
        );
    }
}
