//! Plan-level parallel contraction: a DAG scheduler over
//! [`ContractionPlan`] steps.
//!
//! Algorithm II is one big contraction, so term-level work stealing (the
//! `qaec` engine's trick for Algorithm I) has nothing to steal. The
//! parallelism lives *inside* the plan instead: steps form an explicit
//! dependency tree through their slot indices, and any two steps whose
//! operands have resolved are independent. This driver extracts that DAG
//! ([`ContractionPlan::graph`]), keeps a critical-path-first ready heap,
//! and dispatches runnable steps to a pool of workers that all hash-cons
//! into one [`SharedTddStore`].
//!
//! ## Why any schedule gives the same answer, bit for bit
//!
//! Workers attach to the store with **scoped** interning
//! ([`TddManager::new_shared_scoped`]): each leaf conversion and each
//! plan step opens a fresh weight scope, whose tolerance gluing and
//! computed tables start empty. Within a scope the computation is the
//! deterministic `cont` recursion over the operand *values* — glue
//! representatives are elected in recursion order, interned globally by
//! exact bits, and `ops::add` orders its operands by weight value — so a
//! step's result edge (value bits and node shape) is a pure function of
//! its operands and the elimination set. Nothing value-bearing leaks
//! between scopes except the exact-bits store itself, which is a global
//! find-or-insert keyed by bit pattern. Each step's result is therefore
//! the same in every topological execution order, including the fully
//! sequential one; scheduling affects only which worker computes what.
//! The reported `max_nodes` is a max over per-step
//! [`TddManager::node_count`] values of those scheduling-independent
//! edges, so it is deterministic too.
//!
//! (The scoped family exists because the canonical grid fragments under
//! plan-driver arithmetic — round-off twins straddling grid cells
//! tripled the weight arena and with it the whole contraction's cost;
//! see `crate::store`'s module docs.)

use crate::convert::from_tensor;
use crate::driver::{ContractionResult, DriverTimeout};
use crate::manager::{Edge, TddManager, TddStats};
use crate::store::SharedTddStore;
use qaec_tensornet::{ContractionPlan, PlanGraph, PlanStep, TensorNetwork, VarOrder};
use std::collections::BinaryHeap;
// The pool scheduler's ready-queue uses Condvar, which has no model twin, so
// its Mutex stays `std::sync` (see `crate::sync`); the atomics go through the
// shim and are model-checkable.
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// Execution knobs for [`contract_network_parallel`].
#[derive(Clone, Copy, Debug)]
pub struct ParallelOptions {
    /// Worker threads. `1` runs the scheduler inline on the calling
    /// thread (no spawn) — same code path, bit-identical results.
    pub workers: usize,
    /// Abort with [`DriverTimeout`] once this instant passes (probed
    /// between steps and, amortised, inside every `cont` recursion).
    pub deadline: Option<Instant>,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            workers: 1,
            deadline: None,
        }
    }
}

/// What a parallel contraction produced.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOutcome {
    /// The contraction result (root edge handles are valid in any
    /// manager attached to the run's store).
    pub result: ContractionResult,
    /// Worker-local statistics merged across the pool. Store-owned
    /// allocation counters are *not* included — merge
    /// [`SharedTddStore::stats`] exactly once on top, as with the term
    /// engine.
    pub stats: TddStats,
}

/// Runs `f(worker_index)` on `workers` OS threads, returning every
/// worker's value in index order. `workers <= 1` runs inline on the
/// calling thread — no spawn, identical code path. This is the one
/// worker-pool primitive shared by the term engine and the plan
/// scheduler.
///
/// # Panics
///
/// Propagates worker panics.
pub fn run_on_workers<T, F>(workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 {
        return vec![f(0)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers).map(|w| scope.spawn(move || f(w))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// A runnable step in the ready heap: higher critical-path priority pops
/// first, ties broken toward the lower step id (deterministic pop order;
/// results do not depend on it either way).
struct ReadyStep {
    priority: f64,
    step: usize,
}

impl PartialEq for ReadyStep {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ReadyStep {}
impl PartialOrd for ReadyStep {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ReadyStep {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.step.cmp(&self.step))
    }
}

/// The mutex-guarded scheduler core: the ready heap plus the count of
/// steps still unfinished (workers park on the condvar while the heap is
/// empty but work remains in flight).
struct ReadyState {
    heap: BinaryHeap<ReadyStep>,
    unfinished: usize,
}

/// Cross-worker scheduler state.
struct Scheduler {
    ready: Mutex<ReadyState>,
    wake: Condvar,
    /// Unresolved step-dependencies per step; a step joins the heap when
    /// its count hits zero.
    indegree: Vec<AtomicUsize>,
    /// Write-once result slot table (inputs resolve lazily inside the
    /// consuming step; results publish here before dependents wake).
    slots: Vec<OnceLock<Edge>>,
    /// Raised on timeout: everyone drains and exits.
    stop: AtomicBool,
}

impl Scheduler {
    /// Blocks until a step is runnable. `None` means done or stopped.
    fn next_step(&self) -> Option<usize> {
        let mut state = self.ready.lock().expect("scheduler poisoned");
        loop {
            // ordering: Acquire pairs with the Release in `halt`; a worker
            // that observes the stop flag also observes whatever state the
            // halting thread wrote before raising it.
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            if let Some(top) = state.heap.pop() {
                return Some(top.step);
            }
            if state.unfinished == 0 {
                return None;
            }
            state = self.wake.wait(state).expect("scheduler poisoned");
        }
    }

    /// Marks `step` finished and promotes dependents whose last
    /// dependency this was. The highest-priority newly-ready dependent
    /// is handed straight back to the finishing worker (chain
    /// following): the worker's computed tables already hold that
    /// region's sub-results, and skipping the heap round-trip keeps
    /// long dependency chains off the scheduler lock.
    fn finish_step(&self, step: usize, graph: &PlanGraph) -> Option<usize> {
        let mut rest: Vec<usize> = graph.dependents[step]
            .iter()
            .copied()
            // ordering: AcqRel — the release half publishes this step's
            // result slot to whoever decrements last; the acquire half makes
            // every predecessor's published slot visible to the thread that
            // takes the dependent (it alone sees the count hit zero).
            .filter(|&d| self.indegree[d].fetch_sub(1, Ordering::AcqRel) == 1)
            .collect();
        let follow = rest
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| graph.priority[a].total_cmp(&graph.priority[b]))
            .map(|(i, _)| i)
            .map(|i| rest.swap_remove(i));

        let mut state = self.ready.lock().expect("scheduler poisoned");
        state.unfinished -= 1;
        let done = state.unfinished == 0;
        for d in rest.iter().copied() {
            state.heap.push(ReadyStep {
                priority: graph.priority[d],
                step: d,
            });
        }
        drop(state);
        if done {
            self.wake.notify_all();
        } else {
            for _ in &rest {
                self.wake.notify_one();
            }
        }
        follow
    }

    /// Raises the stop flag and wakes every parked worker.
    fn halt(&self) {
        // ordering: Release pairs with the Acquire in `next_step` (see
        // there); notify_all below handles the wakeup itself.
        self.stop.store(true, Ordering::Release);
        self.wake.notify_all();
    }
}

/// Halts the scheduler if its worker unwinds: without this, a panicking
/// worker would leave `unfinished` above zero forever and every sibling
/// parked on the condvar — the pool would deadlock instead of
/// propagating the panic through `run_on_workers`'s join.
struct PanicGuard<'a>(&'a Scheduler);

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.halt();
        }
    }
}

/// Executes `plan` over `network` on a pool of workers sharing `store`.
///
/// Results are **bit-identical** to executing the same plan sequentially
/// on a manager attached to the same kind of store, for every worker
/// count (see the module docs for the purity argument).
///
/// # Errors
///
/// [`DriverTimeout`] if the deadline expires (between steps or inside a
/// step's `cont` recursion).
///
/// # Panics
///
/// Panics if the plan does not match the network or an index is missing
/// from `order`.
pub fn contract_network_parallel(
    store: &Arc<SharedTddStore>,
    network: &TensorNetwork,
    plan: &ContractionPlan,
    order: &VarOrder,
    options: ParallelOptions,
) -> Result<ParallelOutcome, DriverTimeout> {
    let graph = plan.graph(network);
    let n_steps = plan.steps.len();
    let scheduler = Scheduler {
        ready: Mutex::new(ReadyState {
            heap: graph
                .initial_ready()
                .into_iter()
                .map(|step| ReadyStep {
                    priority: graph.priority[step],
                    step,
                })
                .collect(),
            unfinished: n_steps,
        }),
        wake: Condvar::new(),
        indegree: graph
            .indegree
            .iter()
            .map(|&d| AtomicUsize::new(d))
            .collect(),
        slots: (0..plan.n_slots.max(network.tensors().len()))
            .map(|_| OnceLock::new())
            .collect(),
        stop: AtomicBool::new(false),
    };

    let workers = options.workers.max(1).min(n_steps.max(1));
    let n_inputs = network.tensors().len();
    let worker = |_w: usize| -> Result<(usize, TddStats), DriverTimeout> {
        let _panic_guard = PanicGuard(&scheduler);
        let mut m = TddManager::new_shared_scoped(store);
        m.set_deadline(options.deadline);
        let mut max_nodes = 0usize;
        // Resolves one operand slot: produced slots read the published
        // edge, input slots convert the tensor here (each input is
        // consumed by exactly one step, so no work is duplicated).
        let fetch = |m: &mut TddManager, max_nodes: &mut usize, slot: usize| -> Edge {
            if let Some(&e) = scheduler.slots[slot].get() {
                return e;
            }
            debug_assert!(slot < n_inputs, "unpublished non-input slot {slot}");
            let e = from_tensor(m, &network.tensors()[slot], order);
            *max_nodes = (*max_nodes).max(m.node_count(e));
            e
        };
        let mut follow: Option<usize> = None;
        while let Some(step) = follow.take().or_else(|| scheduler.next_step()) {
            if options.deadline.is_some_and(|d| Instant::now() >= d) {
                scheduler.halt();
                return Err(DriverTimeout);
            }
            let (operands, eliminate, result_slot) = match &plan.steps[step] {
                PlanStep::Contract {
                    a,
                    b,
                    eliminate,
                    result,
                } => {
                    let ea = fetch(&mut m, &mut max_nodes, *a);
                    let eb = fetch(&mut m, &mut max_nodes, *b);
                    ((ea, eb), eliminate, *result)
                }
                PlanStep::SumOut {
                    t,
                    eliminate,
                    result,
                } => {
                    let et = fetch(&mut m, &mut max_nodes, *t);
                    ((et, Edge::ONE), eliminate, *result)
                }
            };
            let mut levels: Vec<u32> = eliminate.iter().map(|&i| order.level(i)).collect();
            levels.sort_unstable();
            let set = m.intern_elim_set(levels);
            // One plan step = one weight scope, mirroring the sequential
            // driver exactly (the purity unit of the module docs).
            m.begin_weight_scope();
            let e = match crate::ops::try_cont(&mut m, operands.0, operands.1, set) {
                Ok(e) => e,
                Err(timeout) => {
                    scheduler.halt();
                    return Err(timeout);
                }
            };
            max_nodes = max_nodes.max(m.node_count(e));
            scheduler.slots[result_slot]
                .set(e)
                .expect("step result published twice");
            follow = scheduler.finish_step(step, &graph);
        }
        Ok((max_nodes, m.stats()))
    };

    let hauls = run_on_workers(workers, worker);

    let mut max_nodes = 0usize;
    let mut stats = TddStats::default();
    let mut error = None;
    for haul in hauls {
        match haul {
            Ok((nodes, worker_stats)) => {
                max_nodes = max_nodes.max(nodes);
                stats.merge(&worker_stats);
            }
            Err(e) => error = Some(e),
        }
    }
    if let Some(e) = error {
        return Err(e);
    }
    // ordering: Acquire (pairs with `halt`'s Release) — read after the
    // worker join, which already ordered everything; Acquire keeps the
    // site self-documenting and uniform with `next_step`.
    if scheduler.stop.load(Ordering::Acquire) {
        return Err(DriverTimeout);
    }

    // Close out: resolve the root (converting it here if the plan left a
    // bare input unconsumed), account for any other unconsumed inputs so
    // `max_nodes` matches the sequential driver's leaf accounting, and
    // apply the free-loop scalar.
    let mut m = TddManager::new_shared_scoped(store);
    for &slot in &graph.unconsumed_inputs {
        if scheduler.slots[slot].get().is_none() {
            let e = from_tensor(&mut m, &network.tensors()[slot], order);
            max_nodes = max_nodes.max(m.node_count(e));
            scheduler.slots[slot]
                .set(e)
                .expect("unconsumed input published twice");
        }
    }
    let mut root = match graph.root_slot {
        Some(slot) => *scheduler.slots[slot].get().expect("root published"),
        None => Edge::ONE,
    };
    if plan.free_loops > 0 {
        m.begin_weight_scope();
        root = Edge {
            node: root.node,
            weight: m.wscale_real(root.weight, (plan.free_loops as f64).exp2()),
        };
    }
    stats.merge(&m.stats());
    max_nodes = max_nodes.max(1);

    Ok(ParallelOutcome {
        result: ContractionResult {
            root,
            max_nodes,
            peak_arena: store.arena_len(),
            steps: n_steps,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{contract_network_opts, DriverOptions};
    use qaec_math::{Matrix, C64};
    use qaec_tensornet::{IndexId, Strategy, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::time::Duration;

    fn random_unitary_2x2(rng: &mut StdRng) -> Matrix {
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let lambda: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let c = C64::real((theta / 2.0).cos());
        let s = C64::real((theta / 2.0).sin());
        Matrix::from_rows(&[
            vec![c, -(C64::cis(lambda) * s)],
            vec![C64::cis(phi) * s, C64::cis(phi + lambda) * c],
        ])
    }

    fn random_chain(n: usize, seed: u64) -> TensorNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = TensorNetwork::new();
        for k in 0..n {
            let input = IndexId(k as u32);
            let output = IndexId(((k + 1) % n) as u32);
            net.add(Tensor::from_matrix(
                &random_unitary_2x2(&mut rng),
                &[output],
                &[input],
            ));
        }
        net
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential_on_the_same_store_kind() {
        for strategy in [
            Strategy::MinFill,
            Strategy::GreedySize,
            Strategy::Sequential,
        ] {
            let net = random_chain(8, 0xA11CE);
            let order = VarOrder::from_sequence((0..8).map(IndexId));
            let plan = net.plan(strategy);

            // Sequential reference on a (fresh) shared store, same
            // interning family as the parallel workers.
            let seq_store = SharedTddStore::new();
            let mut seq_m = TddManager::new_shared_scoped(&seq_store);
            let seq =
                contract_network_opts(&mut seq_m, &net, &plan, &order, DriverOptions::default())
                    .expect("no deadline");
            let seq_value = seq_m.edge_scalar(seq.root).expect("scalar");

            for workers in [1usize, 2, 4, 8] {
                let store = SharedTddStore::new();
                let out = contract_network_parallel(
                    &store,
                    &net,
                    &plan,
                    &order,
                    ParallelOptions {
                        workers,
                        deadline: None,
                    },
                )
                .expect("no deadline");
                let m = TddManager::new_shared(&store);
                let value = m.edge_scalar(out.result.root).expect("scalar");
                assert_eq!(
                    value.re.to_bits(),
                    seq_value.re.to_bits(),
                    "{strategy:?} workers={workers}: re drifted"
                );
                assert_eq!(
                    value.im.to_bits(),
                    seq_value.im.to_bits(),
                    "{strategy:?} workers={workers}: im drifted"
                );
                assert_eq!(
                    out.result.max_nodes, seq.max_nodes,
                    "{strategy:?} workers={workers}: max_nodes drifted"
                );
            }
        }
    }

    #[test]
    fn parallel_agrees_with_dense_backend() {
        let net = random_chain(6, 42);
        let order = VarOrder::from_sequence((0..6).map(IndexId));
        let plan = net.plan(Strategy::MinFill);
        let dense = net.contract_dense(&plan).as_scalar().expect("scalar");
        let store = SharedTddStore::new();
        let out = contract_network_parallel(
            &store,
            &net,
            &plan,
            &order,
            ParallelOptions {
                workers: 4,
                deadline: None,
            },
        )
        .expect("no deadline");
        let m = TddManager::new_shared(&store);
        let got = m.edge_scalar(out.result.root).expect("scalar");
        assert!(
            (got - dense).abs() < 1e-8,
            "dense {dense} vs parallel {got}"
        );
        assert_eq!(out.result.steps, plan.steps.len());
        assert!(out.result.peak_arena > 0);
    }

    #[test]
    fn parallel_free_loops_and_empty_plans() {
        // Free loops scale the root; an empty network contracts to 1.
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        net.close_index(IndexId(5));
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let plan = net.plan(Strategy::Sequential);
        let store = SharedTddStore::new();
        let out =
            contract_network_parallel(&store, &net, &plan, &order, ParallelOptions::default())
                .expect("no deadline");
        let m = TddManager::new_shared(&store);
        // tr(I)·2 = 4.
        assert!((m.edge_scalar(out.result.root).unwrap() - C64::real(4.0)).abs() < 1e-9);

        let empty = TensorNetwork::new();
        let plan = empty.plan(Strategy::MinFill);
        let store = SharedTddStore::new();
        let out =
            contract_network_parallel(&store, &empty, &plan, &order, ParallelOptions::default())
                .expect("no deadline");
        assert_eq!(out.result.root, Edge::ONE);
    }

    #[test]
    fn expired_deadline_times_out_every_worker_count() {
        let net = random_chain(8, 7);
        let order = VarOrder::from_sequence((0..8).map(IndexId));
        let plan = net.plan(Strategy::MinFill);
        for workers in [1usize, 4] {
            let store = SharedTddStore::new();
            let result = contract_network_parallel(
                &store,
                &net,
                &plan,
                &order,
                ParallelOptions {
                    workers,
                    deadline: Some(Instant::now() - Duration::from_millis(1)),
                },
            );
            assert_eq!(result.unwrap_err(), DriverTimeout, "workers={workers}");
        }
    }
}
