//! The TDD node arena, normalization rules and unique table.

use crate::weight::{WeightId, WeightTable};
use qaec_math::C64;
use std::collections::HashMap;

/// Handle to a node in the manager's arena. `NodeId::TERMINAL` (id 0) is
/// the unique terminal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal node.
    pub const TERMINAL: NodeId = NodeId(0);

    /// Whether this is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == NodeId::TERMINAL
    }
}

/// A weighted edge: the fundamental TDD value. A whole diagram is named by
/// its root edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Target node.
    pub node: NodeId,
    /// Interned complex weight multiplying the whole sub-diagram.
    pub weight: WeightId,
}

impl Edge {
    /// The constant-zero edge.
    pub const ZERO: Edge = Edge {
        node: NodeId::TERMINAL,
        weight: WeightId::ZERO,
    };
    /// The constant-one edge.
    pub const ONE: Edge = Edge {
        node: NodeId::TERMINAL,
        weight: WeightId::ONE,
    };

    /// Whether this edge denotes the zero tensor.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }
}

/// Internal node: branches on variable `var` (a level in the global
/// [`qaec_tensornet::VarOrder`]; smaller = closer to the root).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub low: Edge,
    pub high: Edge,
}

/// The variable level reported for the terminal (below every real level).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Operation counters and size statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TddStats {
    /// Nodes ever allocated (monotone; survives GC).
    pub nodes_created: u64,
    /// Unique-table hits (structure sharing events).
    pub unique_hits: u64,
    /// `add` invocations / computed-table hits.
    pub add_calls: u64,
    /// `add` computed-table hits.
    pub add_hits: u64,
    /// `cont` invocations.
    pub cont_calls: u64,
    /// `cont` computed-table hits.
    pub cont_hits: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Largest arena size observed (live + dead nodes, excluding terminal).
    pub peak_nodes: usize,
}

impl TddStats {
    /// Folds another manager's counters into this one: counts add up,
    /// size maxima take the max. Used to combine the thread-local
    /// managers of a parallel run into one report.
    ///
    /// # Example
    ///
    /// ```
    /// use qaec_tdd::TddStats;
    ///
    /// let mut total = TddStats { nodes_created: 3, peak_nodes: 10, ..TddStats::default() };
    /// let worker = TddStats { nodes_created: 2, peak_nodes: 25, ..TddStats::default() };
    /// total.merge(&worker);
    /// assert_eq!(total.nodes_created, 5);
    /// assert_eq!(total.peak_nodes, 25);
    /// ```
    pub fn merge(&mut self, other: &TddStats) {
        self.nodes_created += other.nodes_created;
        self.unique_hits += other.unique_hits;
        self.add_calls += other.add_calls;
        self.add_hits += other.add_hits;
        self.cont_calls += other.cont_calls;
        self.cont_hits += other.cont_hits;
        self.gc_runs += other.gc_runs;
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
    }
}

impl std::fmt::Display for TddStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rate = |hits: u64, calls: u64| {
            if calls == 0 {
                0.0
            } else {
                hits as f64 / calls as f64
            }
        };
        write!(
            f,
            "nodes created {} (peak {}), unique hits {}, add {} ({:.0}% hit), cont {} ({:.0}% hit), gc runs {}",
            self.nodes_created,
            self.peak_nodes,
            self.unique_hits,
            self.add_calls,
            100.0 * rate(self.add_hits, self.add_calls),
            self.cont_calls,
            100.0 * rate(self.cont_hits, self.cont_calls),
            self.gc_runs,
        )
    }
}

/// The decision-diagram engine: arena, unique table, computed tables and
/// weight interning, shared by every diagram it creates.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::TddManager;
///
/// let mut m = TddManager::new();
/// // A one-variable tensor T[x] = (3, 4i) built from raw cofactors.
/// let low = m.terminal(C64::real(3.0));
/// let high = m.terminal(C64::new(0.0, 4.0));
/// let t = m.make_node(0, low, high);
/// assert_eq!(m.eval(t, &[0]), C64::real(3.0));
/// assert_eq!(m.eval(t, &[1]), C64::new(0.0, 4.0));
/// assert_eq!(m.node_count(t), 2); // one internal node + terminal
/// ```
#[derive(Debug)]
pub struct TddManager {
    pub(crate) weights: WeightTable,
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: HashMap<Node, NodeId>,
    pub(crate) add_cache: HashMap<(Edge, Edge), Edge>,
    pub(crate) cont_cache: HashMap<(NodeId, NodeId, u32, u32), Edge>,
    pub(crate) elim_sets: Vec<Vec<u32>>,
    pub(crate) elim_set_ids: HashMap<Vec<u32>, u32>,
    pub(crate) stats: TddStats,
}

impl Default for TddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TddManager {
    /// A manager with the default weight tolerance (`1e-10`).
    pub fn new() -> Self {
        Self::with_tolerance(1e-10)
    }

    /// A manager with a custom weight-interning tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Self {
        TddManager {
            weights: WeightTable::new(tol),
            nodes: vec![Node {
                var: TERMINAL_VAR,
                low: Edge::ZERO,
                high: Edge::ZERO,
            }], // slot 0 = terminal sentinel
            unique: HashMap::new(),
            add_cache: HashMap::new(),
            cont_cache: HashMap::new(),
            elim_sets: Vec::new(),
            elim_set_ids: HashMap::new(),
            stats: TddStats::default(),
        }
    }

    /// Operation statistics so far.
    pub fn stats(&self) -> TddStats {
        self.stats
    }

    /// Number of arena slots currently allocated (live + dead, excluding
    /// the terminal sentinel).
    pub fn arena_len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Access to the weight table.
    pub fn weights(&self) -> &WeightTable {
        &self.weights
    }

    /// Interns a complex value as an edge weight.
    pub fn intern_weight(&mut self, z: C64) -> WeightId {
        self.weights.intern(z)
    }

    /// The complex value of an edge weight.
    pub fn weight_value(&self, w: WeightId) -> C64 {
        self.weights.value(w)
    }

    /// A terminal edge with the given scalar value.
    pub fn terminal(&mut self, z: C64) -> Edge {
        Edge {
            node: NodeId::TERMINAL,
            weight: self.weights.intern(z),
        }
    }

    /// The scalar behind an edge, if it is a terminal edge.
    pub fn edge_scalar(&self, e: Edge) -> Option<C64> {
        e.node.is_terminal().then(|| self.weights.value(e.weight))
    }

    /// The variable level of an edge's root node (`u32::MAX` for the
    /// terminal).
    #[inline]
    pub fn var(&self, n: NodeId) -> u32 {
        self.nodes[n.0 as usize].var
    }

    pub(crate) fn node(&self, n: NodeId) -> Node {
        self.nodes[n.0 as usize]
    }

    /// The normalized node constructor: applies the reduction rule (equal
    /// children → skip the node) and weight normalization (divide both
    /// child weights by the larger-magnitude one, ties preferring the low
    /// child), then hash-conses through the unique table.
    ///
    /// `low`/`high` are the cofactor edges at `var = 0` / `var = 1`.
    ///
    /// # Panics
    ///
    /// Panics if a child's root variable is not below `var` in the order.
    pub fn make_node(&mut self, var: u32, low: Edge, high: Edge) -> Edge {
        debug_assert!(
            self.var(low.node) > var && self.var(high.node) > var,
            "child variable above parent in the order"
        );
        // Reduction: x-independent sub-diagram.
        if low == high {
            return low;
        }
        // Normalization.
        if low.is_zero() && high.is_zero() {
            return Edge::ZERO;
        }
        let ml = self.weights.magnitude(low.weight);
        let mh = self.weights.magnitude(high.weight);
        let norm = if ml + self.weights.tolerance() >= mh {
            low.weight
        } else {
            high.weight
        };
        let new_low = Edge {
            node: low.node,
            weight: if low.weight == norm {
                WeightId::ONE
            } else {
                self.weights.div(low.weight, norm)
            },
        };
        let new_high = Edge {
            node: high.node,
            weight: if high.weight == norm {
                WeightId::ONE
            } else {
                self.weights.div(high.weight, norm)
            },
        };
        let key = Node {
            var,
            low: new_low,
            high: new_high,
        };
        let node = match self.unique.get(&key) {
            Some(&id) => {
                self.stats.unique_hits += 1;
                id
            }
            None => {
                let id = NodeId(self.nodes.len() as u32);
                self.nodes.push(key);
                self.unique.insert(key, id);
                self.stats.nodes_created += 1;
                self.stats.peak_nodes = self.stats.peak_nodes.max(self.nodes.len() - 1);
                id
            }
        };
        Edge { node, weight: norm }
    }

    /// Cofactors of `e` with respect to variable `var`: the pair of edges
    /// for `var = 0` and `var = 1`. If `e`'s root is below `var`, both
    /// cofactors are `e` itself (skipped variable).
    pub fn cofactors(&mut self, e: Edge, var: u32) -> (Edge, Edge) {
        let node = self.node(e.node);
        if e.node.is_terminal() || node.var > var {
            return (e, e);
        }
        debug_assert_eq!(node.var, var, "edge root above requested variable");
        let low = Edge {
            node: node.low.node,
            weight: self.weights.mul(e.weight, node.low.weight),
        };
        let high = Edge {
            node: node.high.node,
            weight: self.weights.mul(e.weight, node.high.weight),
        };
        (low, high)
    }

    /// Evaluates the tensor entry for a full assignment.
    ///
    /// `assignment[k]` is the value (0/1) of the variable at level
    /// `offset + k` where `offset` is the level of `assignment[0]`; more
    /// precisely, the walk consumes `assignment[var]` at every node
    /// branching on `var`, so the slice must be indexed by level.
    pub fn eval(&self, e: Edge, assignment: &[u8]) -> C64 {
        let mut value = self.weights.value(e.weight);
        let mut node_id = e.node;
        while !node_id.is_terminal() {
            let node = self.node(node_id);
            let bit = assignment
                .get(node.var as usize)
                .copied()
                .unwrap_or_else(|| panic!("assignment missing level {}", node.var));
            let next = if bit == 0 { node.low } else { node.high };
            value *= self.weights.value(next.weight);
            node_id = next.node;
        }
        value
    }

    /// Number of distinct nodes reachable from `e`, including the terminal.
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if !n.is_terminal() {
                let node = self.node(n);
                stack.push(node.low.node);
                stack.push(node.high.node);
            }
        }
        seen.len()
    }

    /// Clears the computed tables (add/cont memoization) but keeps nodes
    /// and weights. Used to model the paper's "Ori." (no shared computed
    /// table) configuration and after GC.
    pub fn clear_computed_tables(&mut self) {
        self.add_cache.clear();
        self.cont_cache.clear();
    }

    /// Interns an elimination set (sorted variable levels) for contraction
    /// cache keys, returning its id. Calling twice with the same content
    /// returns the same id, which is what lets the computed table share
    /// work across Algorithm I trace terms.
    pub fn intern_elim_set(&mut self, levels: Vec<u32>) -> u32 {
        debug_assert!(levels.windows(2).all(|w| w[0] < w[1]), "levels not sorted");
        if let Some(&id) = self.elim_set_ids.get(&levels) {
            return id;
        }
        let id = self.elim_sets.len() as u32;
        self.elim_sets.push(levels.clone());
        self.elim_set_ids.insert(levels, id);
        id
    }

    pub(crate) fn elim_set(&self, id: u32) -> &[u32] {
        &self.elim_sets[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_edges() {
        let mut m = TddManager::new();
        let e = m.terminal(C64::new(2.0, -1.0));
        assert!(e.node.is_terminal());
        assert_eq!(m.edge_scalar(e), Some(C64::new(2.0, -1.0)));
        assert_eq!(m.node_count(e), 1);
        assert!(m.terminal(C64::ZERO).is_zero());
    }

    #[test]
    fn reduction_skips_redundant_node() {
        let mut m = TddManager::new();
        let c = m.terminal(C64::real(0.7));
        let e = m.make_node(3, c, c);
        assert_eq!(e, c, "equal children must collapse");
    }

    #[test]
    fn normalization_prefers_larger_magnitude() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(0.5));
        let high = m.terminal(C64::real(-1.0));
        let e = m.make_node(0, low, high);
        // Norm = the high weight (-1), low child becomes 0.5/-1 = -0.5.
        assert_eq!(m.weight_value(e.weight), C64::real(-1.0));
        let n = m.node(e.node);
        assert_eq!(m.weight_value(n.high.weight), C64::ONE);
        assert_eq!(m.weight_value(n.low.weight), C64::real(-0.5));
    }

    #[test]
    fn normalization_ties_prefer_low() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(-2.0));
        let high = m.terminal(C64::new(0.0, 2.0));
        let e = m.make_node(0, low, high);
        assert_eq!(m.weight_value(e.weight), C64::real(-2.0));
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut m = TddManager::new();
        let a0 = m.terminal(C64::real(1.0));
        let a1 = m.terminal(C64::real(2.0));
        let e1 = m.make_node(0, a0, a1);
        let e2 = m.make_node(0, a0, a1);
        assert_eq!(e1, e2);
        assert_eq!(m.arena_len(), 1);
        assert_eq!(m.stats().unique_hits, 1);
    }

    #[test]
    fn canonicity_across_scaling() {
        // T and 2·T must share the same node, differing only in the edge
        // weight.
        let mut m = TddManager::new();
        let e1 = {
            let l = m.terminal(C64::real(1.0));
            let h = m.terminal(C64::real(3.0));
            m.make_node(0, l, h)
        };
        let e2 = {
            let l = m.terminal(C64::real(2.0));
            let h = m.terminal(C64::real(6.0));
            m.make_node(0, l, h)
        };
        assert_eq!(e1.node, e2.node);
        let r1 = m.weight_value(e1.weight);
        let r2 = m.weight_value(e2.weight);
        assert!((r2 / r1 - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_children_collapse_to_zero() {
        let mut m = TddManager::new();
        let e = m.make_node(1, Edge::ZERO, Edge::ZERO);
        assert_eq!(e, Edge::ZERO);
    }

    #[test]
    fn eval_walks_assignments() {
        let mut m = TddManager::new();
        // T[x0, x1] = [[1, 2], [3, 4]] built bottom-up.
        let rows: Vec<Edge> = (1..=4).map(|v| m.terminal(C64::real(v as f64))).collect();
        let row0 = m.make_node(1, rows[0], rows[1]);
        let row1 = m.make_node(1, rows[2], rows[3]);
        let root = m.make_node(0, row0, row1);
        assert!((m.eval(root, &[0, 0]) - C64::real(1.0)).abs() < 1e-9);
        assert!((m.eval(root, &[0, 1]) - C64::real(2.0)).abs() < 1e-9);
        assert!((m.eval(root, &[1, 0]) - C64::real(3.0)).abs() < 1e-9);
        assert!((m.eval(root, &[1, 1]) - C64::real(4.0)).abs() < 1e-9);
        assert_eq!(m.node_count(root), 4); // root + 2 rows + terminal
    }

    #[test]
    fn cofactors_of_skipped_variable() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(1.0));
        let high = m.terminal(C64::real(2.0));
        let e = m.make_node(5, low, high);
        // Variable 2 is above the root (5): both cofactors are e.
        let (c0, c1) = m.cofactors(e, 2);
        assert_eq!(c0, e);
        assert_eq!(c1, e);
        // At its own variable the node splits.
        let (c0, c1) = m.cofactors(e, 5);
        assert!((m.edge_scalar(c0).unwrap() - C64::real(1.0)).abs() < 1e-9);
        assert!((m.edge_scalar(c1).unwrap() - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn elim_set_interning_is_stable() {
        let mut m = TddManager::new();
        let a = m.intern_elim_set(vec![1, 4, 9]);
        let b = m.intern_elim_set(vec![1, 4, 9]);
        let c = m.intern_elim_set(vec![1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.elim_set(a), &[1, 4, 9]);
    }

    #[test]
    fn stats_track_creation() {
        let mut m = TddManager::new();
        let l = m.terminal(C64::real(1.0));
        let h = m.terminal(C64::real(2.0));
        let _ = m.make_node(0, l, h);
        assert_eq!(m.stats().nodes_created, 1);
        assert_eq!(m.stats().peak_nodes, 1);
        let text = m.stats().to_string();
        assert!(text.contains("nodes created 1"));
        assert!(text.contains("gc runs 0"));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peaks() {
        let mut a = TddStats {
            nodes_created: 10,
            unique_hits: 1,
            add_calls: 2,
            add_hits: 1,
            cont_calls: 4,
            cont_hits: 3,
            gc_runs: 1,
            peak_nodes: 100,
        };
        let b = TddStats {
            nodes_created: 5,
            unique_hits: 2,
            add_calls: 3,
            add_hits: 2,
            cont_calls: 6,
            cont_hits: 1,
            gc_runs: 0,
            peak_nodes: 40,
        };
        a.merge(&b);
        assert_eq!(a.nodes_created, 15);
        assert_eq!(a.unique_hits, 3);
        assert_eq!(a.add_calls, 5);
        assert_eq!(a.add_hits, 3);
        assert_eq!(a.cont_calls, 10);
        assert_eq!(a.cont_hits, 4);
        assert_eq!(a.gc_runs, 1);
        assert_eq!(a.peak_nodes, 100, "peak takes the max, not the sum");
    }
}
