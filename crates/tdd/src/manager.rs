//! The TDD node arena, normalization rules and unique table.
//!
//! Node and weight storage sit behind the `TddStore` abstraction with
//! two implementations: the default **private** store (a plain arena +
//! unique table + [`WeightTable`], exactly the sequential fast path) and
//! the **shared** [`crate::SharedTddStore`] (lock-striped concurrent
//! tables over append-only arenas), which several managers — one per
//! worker thread — can attach to so sub-diagrams hash-cons *across*
//! threads. Computed tables (`add`/`cont` memoization) always stay
//! per-manager; only `make_node`, weight interning/arithmetic and
//! elimination-set interning route through the store.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::store::{SharedTddStore, WeightClass};
use crate::weight::{WeightId, WeightTable};
use qaec_math::C64;
use std::sync::Arc;

/// Handle to a node in the manager's arena. `NodeId::TERMINAL` (id 0) is
/// the unique terminal node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The terminal node.
    pub const TERMINAL: NodeId = NodeId(0);

    /// Whether this is the terminal node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self == NodeId::TERMINAL
    }
}

/// A weighted edge: the fundamental TDD value. A whole diagram is named by
/// its root edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Target node.
    pub node: NodeId,
    /// Interned complex weight multiplying the whole sub-diagram.
    pub weight: WeightId,
}

impl Edge {
    /// The constant-zero edge.
    pub const ZERO: Edge = Edge {
        node: NodeId::TERMINAL,
        weight: WeightId::ZERO,
    };
    /// The constant-one edge.
    pub const ONE: Edge = Edge {
        node: NodeId::TERMINAL,
        weight: WeightId::ONE,
    };

    /// Whether this edge denotes the zero tensor.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.weight.is_zero()
    }
}

/// Internal node: branches on variable `var` (a level in the global
/// [`qaec_tensornet::VarOrder`]; smaller = closer to the root).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub low: Edge,
    pub high: Edge,
}

/// The variable level reported for the terminal (below every real level).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Key of one `cont` computed-table entry: the two (unit-weight) operand
/// nodes, the interned elimination-set id and the position already
/// consumed within it. With a shared store all four components are
/// globally consistent, which is what lets entries travel between the
/// workers of one run (see [`TddManager::seed_cont_cache`]).
pub type ContCacheKey = (NodeId, NodeId, u32, u32);

/// Operation counters and size statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TddStats {
    /// Nodes ever allocated (monotone; survives GC). For a manager
    /// attached to a shared store this stays 0 — allocations are counted
    /// once, store-side (see [`crate::SharedTddStore::stats`]), so
    /// merging every worker's stats cannot double-count them.
    pub nodes_created: u64,
    /// Unique-table hits (structure sharing events). Store-side under
    /// sharing, like `nodes_created`.
    pub unique_hits: u64,
    /// Unique-table hits that resolved to a node created by a *different*
    /// worker — the cross-thread structure sharing a shared store exists
    /// to create. Always 0 for private stores.
    pub cross_unique_hits: u64,
    /// `add` invocations / computed-table hits.
    pub add_calls: u64,
    /// `add` computed-table hits.
    pub add_hits: u64,
    /// `cont` invocations.
    pub cont_calls: u64,
    /// `cont` computed-table hits.
    pub cont_hits: u64,
    /// `cont` cache entries imported from another worker's snapshot
    /// ([`TddManager::seed_cont_cache`]).
    pub seed_imports: u64,
    /// `cont` computed-table hits served by an imported (seeded) entry.
    pub seed_hits: u64,
    /// Garbage collections performed.
    pub gc_runs: u64,
    /// Largest arena size observed (live + dead nodes, excluding terminal).
    pub peak_nodes: usize,
    /// Bytes of backing storage held by the run's shared store
    /// ([`crate::SharedTddStore::bytes_used`]) at report time. 0 for
    /// private-store runs, whose arenas die with the manager; for warm
    /// sessions this is the footprint the service layer's byte-budgeted
    /// eviction accounts against.
    pub store_bytes: u64,
    /// High-water mark of `store_bytes` over the run (and, for shared
    /// stores, over every retired predecessor in a reclamation chain —
    /// see [`crate::SharedTddStore::peak_bytes_used`]). With reclamation
    /// off this equals the final `store_bytes`; with it on, the gap
    /// between the two is the memory reclamation returned.
    pub peak_store_bytes: u64,
}

impl TddStats {
    /// Folds another manager's counters into this one: counts add up,
    /// size maxima take the max. Used to combine the thread-local
    /// managers of a parallel run into one report; with a shared store,
    /// merge [`crate::SharedTddStore::stats`] exactly once on top.
    ///
    /// # Example
    ///
    /// ```
    /// use qaec_tdd::TddStats;
    ///
    /// let mut total = TddStats { nodes_created: 3, peak_nodes: 10, ..TddStats::default() };
    /// let worker = TddStats { nodes_created: 2, peak_nodes: 25, ..TddStats::default() };
    /// total.merge(&worker);
    /// assert_eq!(total.nodes_created, 5);
    /// assert_eq!(total.peak_nodes, 25);
    /// ```
    pub fn merge(&mut self, other: &TddStats) {
        self.nodes_created += other.nodes_created;
        self.unique_hits += other.unique_hits;
        self.cross_unique_hits += other.cross_unique_hits;
        self.add_calls += other.add_calls;
        self.add_hits += other.add_hits;
        self.cont_calls += other.cont_calls;
        self.cont_hits += other.cont_hits;
        self.seed_imports += other.seed_imports;
        self.seed_hits += other.seed_hits;
        self.gc_runs += other.gc_runs;
        self.peak_nodes = self.peak_nodes.max(other.peak_nodes);
        // A footprint, not a counter: every worker of a run reports the
        // same store, so summing would multiply it by the worker count.
        self.store_bytes = self.store_bytes.max(other.store_bytes);
        self.peak_store_bytes = self.peak_store_bytes.max(other.peak_store_bytes);
    }
}

impl std::fmt::Display for TddStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rate = |hits: u64, calls: u64| {
            if calls == 0 {
                0.0
            } else {
                hits as f64 / calls as f64
            }
        };
        write!(
            f,
            "nodes created {} (peak {}), unique hits {} ({} cross-thread), add {} ({:.0}% hit), cont {} ({:.0}% hit), seeded {} (hits {}), gc runs {}, store {} B (peak {} B)",
            self.nodes_created,
            self.peak_nodes,
            self.unique_hits,
            self.cross_unique_hits,
            self.add_calls,
            100.0 * rate(self.add_hits, self.add_calls),
            self.cont_calls,
            100.0 * rate(self.cont_hits, self.cont_calls),
            self.seed_imports,
            self.seed_hits,
            self.gc_runs,
            self.store_bytes,
            self.peak_store_bytes,
        )
    }
}

/// The private (per-manager) node/weight store: the sequential fast
/// path, unchanged from the original single-threaded engine.
#[derive(Debug)]
pub(crate) struct PrivateStore {
    pub(crate) weights: WeightTable,
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<Node, NodeId>,
}

impl PrivateStore {
    /// Bytes of backing storage this private store holds: arena and
    /// unique-table capacity plus the weight table — the private
    /// counterpart of [`SharedTddStore::bytes_used`], so shared-vs-
    /// private memory is actually comparable in reports. Capacity-based
    /// like the shared estimate (hash-table entries count one control
    /// byte per bucket, the std layout).
    pub(crate) fn bytes_used(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.unique.capacity()
                * (std::mem::size_of::<Node>() + std::mem::size_of::<NodeId>() + 1)
            + self.weights.bytes_used()
    }
}

/// How a shared-store manager maps arithmetic results to [`WeightId`]s —
/// the choice of interning family (see `crate::store`'s module docs).
#[derive(Debug)]
pub(crate) enum SharedInterning {
    /// The grid family: snap to the canonical `tol/32` cell, globally.
    /// Every manager on the store maps equal values to one id *and one
    /// stored value*, which is what makes memo-table entries portable
    /// across workers and trace terms (Algorithm I's seeding).
    Canonical {
        /// Write-combining lookaside: grid cell → interned id. Only the
        /// first sighting of a cell takes the store's stripe lock.
        weight_cache: FxHashMap<(i64, i64), WeightId>,
    },
    /// The exact-bits family with *scope-local* tolerance gluing: within
    /// one weight scope (one leaf conversion, one plan step — see
    /// [`TddManager::begin_weight_scope`]) the first value seen in a
    /// tolerance neighbourhood becomes its representative, exactly like
    /// a private [`WeightTable`]; the representative's bits intern
    /// globally by identity. Avoids the grid's cell-straddling
    /// fragmentation (round-off twins landing in different cells), which
    /// is what made shared-store plan runs allocate ~3× the private
    /// driver's weights. Results stay bit-identical across schedules
    /// because each scope is a pure function of its operand values.
    Scoped {
        /// Cross-scope bits → global exact id (pure, never cleared).
        lookaside: FxHashMap<(u64, u64), WeightId>,
        /// Scope-local representatives, bucketed at 2·tol for the 3×3
        /// neighbourhood probe. Cleared at every scope boundary.
        glue: FxHashMap<(i64, i64), Vec<(C64, WeightId)>>,
        /// Scope-local bits → already-glued id (probe short-circuit).
        resolved: FxHashMap<(u64, u64), WeightId>,
    },
}

impl SharedInterning {
    fn canonical() -> Self {
        SharedInterning::Canonical {
            weight_cache: FxHashMap::default(),
        }
    }

    fn scoped() -> Self {
        SharedInterning::Scoped {
            lookaside: FxHashMap::default(),
            glue: FxHashMap::default(),
            resolved: FxHashMap::default(),
        }
    }
}

/// Where a manager keeps its nodes and weights: its own [`PrivateStore`]
/// or a handle onto a cross-thread [`SharedTddStore`].
#[derive(Debug)]
pub(crate) enum TddStore {
    /// Exclusive storage owned by this manager.
    Private(PrivateStore),
    /// A worker handle onto storage shared with other managers.
    Shared {
        store: Arc<SharedTddStore>,
        worker: u32,
        /// Which interning family this manager routes weights through.
        interning: SharedInterning,
    },
}

/// Shared-store interning through the manager's chosen family.
#[inline]
fn intern_shared(store: &SharedTddStore, interning: &mut SharedInterning, z: C64) -> WeightId {
    debug_assert!(z.is_finite(), "non-finite weight {z}");
    match interning {
        SharedInterning::Canonical { weight_cache } => match store.classify(z) {
            WeightClass::Zero => WeightId::ZERO,
            WeightClass::Huge => store.intern_weight_huge(z),
            WeightClass::Grid(re, im) => *weight_cache
                .entry((re, im))
                .or_insert_with(|| store.intern_weight_cell((re, im))),
        },
        SharedInterning::Scoped {
            lookaside,
            glue,
            resolved,
        } => {
            let tol = store.tolerance();
            if z.re.abs() <= tol && z.im.abs() <= tol {
                return WeightId::ZERO;
            }
            let bits = (z.re.to_bits(), z.im.to_bits());
            if let Some(&id) = resolved.get(&bits) {
                return id;
            }
            // Glue within the scope: bucket width 2·tol, so the 3×3
            // probe covers every representative within tol (Chebyshev).
            // The bucket key saturates for huge values, so the probe
            // must saturate too.
            let w = 2.0 * tol;
            let (kr, ki) = ((z.re / w).round() as i64, (z.im / w).round() as i64);
            for dr in -1..=1i64 {
                for di in -1..=1i64 {
                    if let Some(reps) = glue.get(&(kr.saturating_add(dr), ki.saturating_add(di))) {
                        for &(v, id) in reps {
                            if (v.re - z.re).abs() <= tol && (v.im - z.im).abs() <= tol {
                                resolved.insert(bits, id);
                                return id;
                            }
                        }
                    }
                }
            }
            // First sighting in this neighbourhood: `z` becomes the
            // scope's representative, interned globally by exact bits —
            // so every id a scoped manager hands out is *the* global id
            // of its stored bits, making id equality equivalent to
            // value-bit equality (the fast paths below rely on this).
            let id = *lookaside
                .entry(bits)
                .or_insert_with(|| store.intern_weight_exact(z));
            glue.entry((kr, ki)).or_default().push((z, id));
            resolved.insert(bits, id);
            id
        }
    }
}

/// The decision-diagram engine: arena, unique table, computed tables and
/// weight interning, shared by every diagram it creates.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::TddManager;
///
/// let mut m = TddManager::new();
/// // A one-variable tensor T[x] = (3, 4i) built from raw cofactors.
/// let low = m.terminal(C64::real(3.0));
/// let high = m.terminal(C64::new(0.0, 4.0));
/// let t = m.make_node(0, low, high);
/// assert_eq!(m.eval(t, &[0]), C64::real(3.0));
/// assert_eq!(m.eval(t, &[1]), C64::new(0.0, 4.0));
/// assert_eq!(m.node_count(t), 2); // one internal node + terminal
/// ```
#[derive(Debug)]
pub struct TddManager {
    pub(crate) store: TddStore,
    pub(crate) add_cache: FxHashMap<(Edge, Edge), Edge>,
    pub(crate) cont_cache: FxHashMap<ContCacheKey, Edge>,
    /// Keys of `cont_cache` entries imported from another worker.
    pub(crate) cont_seeded: FxHashSet<ContCacheKey>,
    /// Private-mode elimination sets (shared mode interns store-side).
    elim_sets: Vec<Vec<u32>>,
    elim_set_ids: FxHashMap<Vec<u32>, u32>,
    /// Deadline probed inside the `add`/`cont` recursions (see
    /// [`Self::set_deadline`]).
    deadline: Option<std::time::Instant>,
    /// Recursion calls left before the next `Instant::now()` probe.
    probe_budget: u32,
    /// Latched once a probe observes the deadline in the past.
    expired: bool,
    pub(crate) stats: TddStats,
}

/// How many `add`/`cont` recursion calls run between two clock reads of
/// the amortised deadline probe. Each call does O(1) work outside its
/// sub-calls, so the overshoot past a deadline is bounded by roughly
/// this many node constructions plus one in-flight leaf operation.
pub const DEADLINE_PROBE_INTERVAL: u32 = 1024;

impl Default for TddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TddManager {
    /// A manager with a private store and the default weight tolerance
    /// (`1e-10`).
    pub fn new() -> Self {
        Self::with_tolerance(1e-10)
    }

    /// A manager with a private store and a custom weight-interning
    /// tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn with_tolerance(tol: f64) -> Self {
        Self::with_store(TddStore::Private(PrivateStore {
            weights: WeightTable::new(tol),
            nodes: vec![Node {
                var: TERMINAL_VAR,
                low: Edge::ZERO,
                high: Edge::ZERO,
            }], // slot 0 = terminal sentinel
            unique: FxHashMap::default(),
        }))
    }

    /// A worker manager attached to a [`SharedTddStore`]: nodes, weights
    /// and elimination sets go through the shared concurrent tables,
    /// while computed tables stay local to this manager. Handles minted
    /// here are valid in every other manager attached to `store`.
    pub fn new_shared(store: &Arc<SharedTddStore>) -> Self {
        Self::new_shared_with_id(store, store.register_worker())
    }

    /// [`Self::new_shared`] under an explicit worker id (from
    /// [`SharedTddStore::register_worker`]). Use this when one logical
    /// worker creates several managers over its lifetime — e.g. fresh
    /// per-term managers when table reuse is off — so unique-table hits
    /// against that worker's own earlier nodes are not misattributed as
    /// cross-thread sharing.
    pub fn new_shared_with_id(store: &Arc<SharedTddStore>, worker: u32) -> Self {
        Self::with_store(TddStore::Shared {
            store: Arc::clone(store),
            worker,
            interning: SharedInterning::canonical(),
        })
    }

    /// [`Self::new_shared`] with **scope-local** weight interning: the
    /// manager glues within [`Self::begin_weight_scope`] windows and
    /// interns representatives by exact bits, instead of snapping to the
    /// store's global grid. This is the plan drivers' mode — it keeps a
    /// shared-store contraction as compact as the private driver's.
    /// Callers own the scope boundaries: open one per leaf conversion
    /// and per plan step, and results are bit-identical whatever the
    /// schedule or thread count.
    pub fn new_shared_scoped(store: &Arc<SharedTddStore>) -> Self {
        let mut m = Self::new_shared(store);
        m.set_scoped_interning();
        m
    }

    /// Switches this shared-store manager to the scoped interning family
    /// (no-op on private stores). Computed tables are cleared: their
    /// entries may cache grid-family ids, which scoped scopes must never
    /// observe.
    pub fn set_scoped_interning(&mut self) {
        if let TddStore::Shared { interning, .. } = &mut self.store {
            *interning = SharedInterning::scoped();
            self.clear_computed_tables();
        }
    }

    /// Opens a new weight scope on a scoped-interning manager: drops the
    /// scope-local glue so the next tolerance neighbourhood elects a
    /// fresh representative, and clears the computed tables (their
    /// entries embed the outgoing scope's representative ids). A no-op
    /// for canonical and private managers, so generic call sites —
    /// `from_tensor`, the plan drivers — can mark scope boundaries
    /// unconditionally.
    ///
    /// Each scope is a pure function of its operand *values*: within a
    /// scope, representative election follows the deterministic
    /// recursion order, and across scopes only exact bits persist (via
    /// the global exact-interning family). That is the determinism
    /// invariant that keeps scoped shared-store runs bit-identical for
    /// every thread count.
    pub fn begin_weight_scope(&mut self) {
        if let TddStore::Shared {
            interning: SharedInterning::Scoped { glue, resolved, .. },
            ..
        } = &mut self.store
        {
            glue.clear();
            resolved.clear();
        } else {
            return;
        }
        self.clear_computed_tables();
    }

    fn with_store(store: TddStore) -> Self {
        TddManager {
            store,
            add_cache: FxHashMap::default(),
            cont_cache: FxHashMap::default(),
            cont_seeded: FxHashSet::default(),
            elim_sets: Vec::new(),
            elim_set_ids: FxHashMap::default(),
            deadline: None,
            probe_budget: DEADLINE_PROBE_INTERVAL,
            expired: false,
            stats: TddStats::default(),
        }
    }

    /// Arms (or clears) the amortised in-recursion deadline: while set,
    /// [`crate::ops::try_add`] / [`crate::ops::try_cont`] probe the
    /// clock every [`DEADLINE_PROBE_INTERVAL`] recursion calls and abort
    /// with [`crate::DriverTimeout`] once it has passed — so a single
    /// huge contraction cannot overrun a deadline unboundedly the way
    /// the old between-steps check allowed.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
        self.probe_budget = DEADLINE_PROBE_INTERVAL;
        self.expired = false;
    }

    /// The armed deadline, if any.
    pub fn deadline(&self) -> Option<std::time::Instant> {
        self.deadline
    }

    /// One tick of the amortised probe: cheap counter work on most
    /// calls, a clock read every [`DEADLINE_PROBE_INTERVAL`] ticks.
    /// Returns `true` once the armed deadline has passed (latched).
    #[inline]
    pub(crate) fn deadline_exceeded(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.expired {
            return true;
        }
        self.probe_budget -= 1;
        if self.probe_budget == 0 {
            self.probe_budget = DEADLINE_PROBE_INTERVAL;
            if std::time::Instant::now() >= deadline {
                self.expired = true;
                return true;
            }
        }
        false
    }

    /// Whether this manager is attached to a shared store.
    pub fn is_shared(&self) -> bool {
        matches!(self.store, TddStore::Shared { .. })
    }

    /// Whether mark-compact garbage collection is available. Shared
    /// stores are append-only (other workers hold live ids into the
    /// arena), so [`crate::gc::collect`] is a no-op for them.
    pub fn supports_gc(&self) -> bool {
        !self.is_shared()
    }

    /// The private store, for the collector.
    ///
    /// # Panics
    ///
    /// Panics on a shared-store manager (callers check
    /// [`Self::supports_gc`] first).
    pub(crate) fn private_mut(&mut self) -> &mut PrivateStore {
        match &mut self.store {
            TddStore::Private(p) => p,
            TddStore::Shared { .. } => unreachable!("GC requested on a shared store"),
        }
    }

    /// Operation statistics so far. For shared-store managers this holds
    /// only the manager-local counters (computed tables, seeding);
    /// allocation counters and store footprint live in
    /// [`crate::SharedTddStore::stats`]. Private-store managers report
    /// their own arena/table footprint here, so shared-vs-private
    /// memory is comparable in merged reports.
    pub fn stats(&self) -> TddStats {
        let mut stats = self.stats;
        if let TddStore::Private(p) = &self.store {
            stats.store_bytes = p.bytes_used() as u64;
            stats.peak_store_bytes = stats.peak_store_bytes.max(stats.store_bytes);
        }
        stats
    }

    /// Records the current private-store footprint into the
    /// `peak_store_bytes` high-water mark. Called before garbage
    /// collection, which is the only event that can shrink a private
    /// store mid-run.
    pub(crate) fn note_store_peak(&mut self) {
        if let TddStore::Private(p) = &self.store {
            self.stats.peak_store_bytes = self.stats.peak_store_bytes.max(p.bytes_used() as u64);
        }
    }

    /// The weight-interning tolerance.
    pub fn tolerance(&self) -> f64 {
        match &self.store {
            TddStore::Private(p) => p.weights.tolerance(),
            TddStore::Shared { store, .. } => store.tolerance(),
        }
    }

    /// Number of arena slots currently allocated (live + dead, excluding
    /// the terminal sentinel). Global — i.e. across all workers — for a
    /// shared store.
    pub fn arena_len(&self) -> usize {
        match &self.store {
            TddStore::Private(p) => p.nodes.len() - 1,
            TddStore::Shared { store, .. } => store.arena_len(),
        }
    }

    /// Interns a complex value as an edge weight.
    pub fn intern_weight(&mut self, z: C64) -> WeightId {
        match &mut self.store {
            TddStore::Private(p) => p.weights.intern(z),
            TddStore::Shared {
                store, interning, ..
            } => intern_shared(store, interning, z),
        }
    }

    /// The complex value of an edge weight.
    #[inline]
    pub fn weight_value(&self, w: WeightId) -> C64 {
        match &self.store {
            TddStore::Private(p) => p.weights.value(w),
            TddStore::Shared { store, .. } => store.weight_value(w),
        }
    }

    /// Interned product `a·b`.
    pub(crate) fn wmul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        match &mut self.store {
            TddStore::Private(p) => p.weights.mul(a, b),
            TddStore::Shared {
                store, interning, ..
            } => {
                if a.is_zero() || b.is_zero() {
                    WeightId::ZERO
                } else if a.is_one() {
                    b
                } else if b.is_one() {
                    a
                } else {
                    intern_shared(
                        store,
                        interning,
                        store.weight_value(a) * store.weight_value(b),
                    )
                }
            }
        }
    }

    /// Interned sum `a + b`.
    pub(crate) fn wadd(&mut self, a: WeightId, b: WeightId) -> WeightId {
        match &mut self.store {
            TddStore::Private(p) => p.weights.add(a, b),
            TddStore::Shared {
                store, interning, ..
            } => {
                if a.is_zero() {
                    b
                } else if b.is_zero() {
                    a
                } else {
                    intern_shared(
                        store,
                        interning,
                        store.weight_value(a) + store.weight_value(b),
                    )
                }
            }
        }
    }

    /// Interned quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the zero weight.
    pub(crate) fn wdiv(&mut self, a: WeightId, b: WeightId) -> WeightId {
        match &mut self.store {
            TddStore::Private(p) => p.weights.div(a, b),
            TddStore::Shared {
                store, interning, ..
            } => {
                assert!(!b.is_zero(), "division by the zero weight");
                if a.is_zero() {
                    WeightId::ZERO
                } else if b.is_one() {
                    a
                } else if a == b {
                    WeightId::ONE
                } else {
                    intern_shared(
                        store,
                        interning,
                        store.weight_value(a) / store.weight_value(b),
                    )
                }
            }
        }
    }

    /// Interned scalar multiple by a real factor.
    pub(crate) fn wscale_real(&mut self, a: WeightId, factor: f64) -> WeightId {
        match &mut self.store {
            TddStore::Private(p) => p.weights.scale_real(a, factor),
            TddStore::Shared {
                store, interning, ..
            } => {
                if factor == 0.0 || a.is_zero() {
                    if factor == 0.0 {
                        WeightId::ZERO
                    } else {
                        a
                    }
                } else {
                    intern_shared(store, interning, store.weight_value(a) * factor)
                }
            }
        }
    }

    /// The modulus of the value behind `a`.
    #[inline]
    pub(crate) fn wmagnitude(&self, a: WeightId) -> f64 {
        self.weight_value(a).abs()
    }

    /// A terminal edge with the given scalar value.
    pub fn terminal(&mut self, z: C64) -> Edge {
        Edge {
            node: NodeId::TERMINAL,
            weight: self.intern_weight(z),
        }
    }

    /// The scalar behind an edge, if it is a terminal edge.
    pub fn edge_scalar(&self, e: Edge) -> Option<C64> {
        e.node.is_terminal().then(|| self.weight_value(e.weight))
    }

    /// The variable level of an edge's root node (`u32::MAX` for the
    /// terminal).
    #[inline]
    pub fn var(&self, n: NodeId) -> u32 {
        self.node(n).var
    }

    #[inline]
    pub(crate) fn node(&self, n: NodeId) -> Node {
        match &self.store {
            TddStore::Private(p) => p.nodes[n.0 as usize],
            TddStore::Shared { store, .. } => store.node(n),
        }
    }

    /// The normalized node constructor: applies the reduction rule (equal
    /// children → skip the node) and weight normalization (divide both
    /// child weights by the larger-magnitude one, ties preferring the low
    /// child), then hash-conses through the store's unique table.
    ///
    /// `low`/`high` are the cofactor edges at `var = 0` / `var = 1`.
    ///
    /// # Panics
    ///
    /// Panics if a child's root variable is not below `var` in the order.
    pub fn make_node(&mut self, var: u32, low: Edge, high: Edge) -> Edge {
        debug_assert!(
            self.var(low.node) > var && self.var(high.node) > var,
            "child variable above parent in the order"
        );
        // Reduction: x-independent sub-diagram.
        if low == high {
            return low;
        }
        // Normalization.
        if low.is_zero() && high.is_zero() {
            return Edge::ZERO;
        }
        let ml = self.wmagnitude(low.weight);
        let mh = self.wmagnitude(high.weight);
        let norm = if ml + self.tolerance() >= mh {
            low.weight
        } else {
            high.weight
        };
        let new_low = Edge {
            node: low.node,
            weight: if low.weight == norm {
                WeightId::ONE
            } else {
                self.wdiv(low.weight, norm)
            },
        };
        let new_high = Edge {
            node: high.node,
            weight: if high.weight == norm {
                WeightId::ONE
            } else {
                self.wdiv(high.weight, norm)
            },
        };
        let key = Node {
            var,
            low: new_low,
            high: new_high,
        };
        let node = match &mut self.store {
            TddStore::Private(p) => match p.unique.get(&key) {
                Some(&id) => {
                    self.stats.unique_hits += 1;
                    id
                }
                None => {
                    let id = NodeId(p.nodes.len() as u32);
                    p.nodes.push(key);
                    p.unique.insert(key, id);
                    self.stats.nodes_created += 1;
                    self.stats.peak_nodes = self.stats.peak_nodes.max(p.nodes.len() - 1);
                    id
                }
            },
            // Allocation counters are store-owned under sharing (merged
            // once per run), so nothing is added to the local stats here.
            TddStore::Shared { store, worker, .. } => store.unique_node(key, *worker),
        };
        Edge { node, weight: norm }
    }

    /// Cofactors of `e` with respect to variable `var`: the pair of edges
    /// for `var = 0` and `var = 1`. If `e`'s root is below `var`, both
    /// cofactors are `e` itself (skipped variable).
    pub fn cofactors(&mut self, e: Edge, var: u32) -> (Edge, Edge) {
        let node = self.node(e.node);
        if e.node.is_terminal() || node.var > var {
            return (e, e);
        }
        debug_assert_eq!(node.var, var, "edge root above requested variable");
        let low = Edge {
            node: node.low.node,
            weight: self.wmul(e.weight, node.low.weight),
        };
        let high = Edge {
            node: node.high.node,
            weight: self.wmul(e.weight, node.high.weight),
        };
        (low, high)
    }

    /// Evaluates the tensor entry for a full assignment.
    ///
    /// `assignment[k]` is the value (0/1) of the variable at level
    /// `offset + k` where `offset` is the level of `assignment[0]`; more
    /// precisely, the walk consumes `assignment[var]` at every node
    /// branching on `var`, so the slice must be indexed by level.
    pub fn eval(&self, e: Edge, assignment: &[u8]) -> C64 {
        let mut value = self.weight_value(e.weight);
        let mut node_id = e.node;
        while !node_id.is_terminal() {
            let node = self.node(node_id);
            let bit = assignment
                .get(node.var as usize)
                .copied()
                .unwrap_or_else(|| panic!("assignment missing level {}", node.var));
            let next = if bit == 0 { node.low } else { node.high };
            value *= self.weight_value(next.weight);
            node_id = next.node;
        }
        value
    }

    /// Number of distinct nodes reachable from `e`, including the terminal.
    pub fn node_count(&self, e: Edge) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![e.node];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if !n.is_terminal() {
                let node = self.node(n);
                stack.push(node.low.node);
                stack.push(node.high.node);
            }
        }
        seen.len()
    }

    /// Clears the computed tables (add/cont memoization) but keeps nodes
    /// and weights. Used to model the paper's "Ori." (no shared computed
    /// table) configuration and after GC.
    pub fn clear_computed_tables(&mut self) {
        self.add_cache.clear();
        self.cont_cache.clear();
        self.cont_seeded.clear();
    }

    /// A copy of this manager's `cont` computed table, for shipping to
    /// another worker on the *same shared store* (handles are not
    /// portable between private stores).
    pub fn snapshot_cont_cache(&self) -> FxHashMap<ContCacheKey, Edge> {
        self.cont_cache.clone()
    }

    /// Imports another worker's computed-table snapshot: entries whose
    /// key this manager has not computed itself are inserted and marked,
    /// so [`TddStats::seed_imports`] counts what arrived and
    /// [`TddStats::seed_hits`] later proves which imports paid off.
    ///
    /// Only meaningful between managers attached to the same
    /// [`SharedTddStore`] — node, weight and elimination-set handles in
    /// the entries must be valid here.
    pub fn seed_cont_cache(&mut self, entries: &FxHashMap<ContCacheKey, Edge>) {
        debug_assert!(
            matches!(
                &self.store,
                TddStore::Shared {
                    interning: SharedInterning::Canonical { .. },
                    ..
                }
            ),
            "cont-cache seeding requires globally-pure (canonical) interning \
             on a shared store — scoped entries embed scope-local ids"
        );
        for (&key, &result) in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = self.cont_cache.entry(key) {
                slot.insert(result);
                self.cont_seeded.insert(key);
                self.stats.seed_imports += 1;
            }
        }
    }

    /// Interns an elimination set (sorted variable levels) for contraction
    /// cache keys, returning its id. Calling twice with the same content
    /// returns the same id, which is what lets the computed table share
    /// work across Algorithm I trace terms (and, store-wide, across
    /// workers).
    pub fn intern_elim_set(&mut self, levels: Vec<u32>) -> u32 {
        debug_assert!(levels.windows(2).all(|w| w[0] < w[1]), "levels not sorted");
        match &self.store {
            TddStore::Shared { store, .. } => store.intern_elim_set(levels),
            TddStore::Private(_) => {
                if let Some(&id) = self.elim_set_ids.get(&levels) {
                    return id;
                }
                let id = self.elim_sets.len() as u32;
                self.elim_sets.push(levels.clone());
                self.elim_set_ids.insert(levels, id);
                id
            }
        }
    }

    pub(crate) fn elim_set(&self, id: u32) -> &[u32] {
        match &self.store {
            TddStore::Private(_) => &self.elim_sets[id as usize],
            TddStore::Shared { store, .. } => store.elim_set(id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_edges() {
        let mut m = TddManager::new();
        let e = m.terminal(C64::new(2.0, -1.0));
        assert!(e.node.is_terminal());
        assert_eq!(m.edge_scalar(e), Some(C64::new(2.0, -1.0)));
        assert_eq!(m.node_count(e), 1);
        assert!(m.terminal(C64::ZERO).is_zero());
    }

    #[test]
    fn reduction_skips_redundant_node() {
        let mut m = TddManager::new();
        let c = m.terminal(C64::real(0.7));
        let e = m.make_node(3, c, c);
        assert_eq!(e, c, "equal children must collapse");
    }

    #[test]
    fn normalization_prefers_larger_magnitude() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(0.5));
        let high = m.terminal(C64::real(-1.0));
        let e = m.make_node(0, low, high);
        // Norm = the high weight (-1), low child becomes 0.5/-1 = -0.5.
        assert_eq!(m.weight_value(e.weight), C64::real(-1.0));
        let n = m.node(e.node);
        assert_eq!(m.weight_value(n.high.weight), C64::ONE);
        assert_eq!(m.weight_value(n.low.weight), C64::real(-0.5));
    }

    #[test]
    fn normalization_ties_prefer_low() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(-2.0));
        let high = m.terminal(C64::new(0.0, 2.0));
        let e = m.make_node(0, low, high);
        assert_eq!(m.weight_value(e.weight), C64::real(-2.0));
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let mut m = TddManager::new();
        let a0 = m.terminal(C64::real(1.0));
        let a1 = m.terminal(C64::real(2.0));
        let e1 = m.make_node(0, a0, a1);
        let e2 = m.make_node(0, a0, a1);
        assert_eq!(e1, e2);
        assert_eq!(m.arena_len(), 1);
        assert_eq!(m.stats().unique_hits, 1);
    }

    #[test]
    fn canonicity_across_scaling() {
        // T and 2·T must share the same node, differing only in the edge
        // weight.
        let mut m = TddManager::new();
        let e1 = {
            let l = m.terminal(C64::real(1.0));
            let h = m.terminal(C64::real(3.0));
            m.make_node(0, l, h)
        };
        let e2 = {
            let l = m.terminal(C64::real(2.0));
            let h = m.terminal(C64::real(6.0));
            m.make_node(0, l, h)
        };
        assert_eq!(e1.node, e2.node);
        let r1 = m.weight_value(e1.weight);
        let r2 = m.weight_value(e2.weight);
        assert!((r2 / r1 - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_children_collapse_to_zero() {
        let mut m = TddManager::new();
        let e = m.make_node(1, Edge::ZERO, Edge::ZERO);
        assert_eq!(e, Edge::ZERO);
    }

    #[test]
    fn eval_walks_assignments() {
        let mut m = TddManager::new();
        // T[x0, x1] = [[1, 2], [3, 4]] built bottom-up.
        let rows: Vec<Edge> = (1..=4).map(|v| m.terminal(C64::real(v as f64))).collect();
        let row0 = m.make_node(1, rows[0], rows[1]);
        let row1 = m.make_node(1, rows[2], rows[3]);
        let root = m.make_node(0, row0, row1);
        assert!((m.eval(root, &[0, 0]) - C64::real(1.0)).abs() < 1e-9);
        assert!((m.eval(root, &[0, 1]) - C64::real(2.0)).abs() < 1e-9);
        assert!((m.eval(root, &[1, 0]) - C64::real(3.0)).abs() < 1e-9);
        assert!((m.eval(root, &[1, 1]) - C64::real(4.0)).abs() < 1e-9);
        assert_eq!(m.node_count(root), 4); // root + 2 rows + terminal
    }

    #[test]
    fn cofactors_of_skipped_variable() {
        let mut m = TddManager::new();
        let low = m.terminal(C64::real(1.0));
        let high = m.terminal(C64::real(2.0));
        let e = m.make_node(5, low, high);
        // Variable 2 is above the root (5): both cofactors are e.
        let (c0, c1) = m.cofactors(e, 2);
        assert_eq!(c0, e);
        assert_eq!(c1, e);
        // At its own variable the node splits.
        let (c0, c1) = m.cofactors(e, 5);
        assert!((m.edge_scalar(c0).unwrap() - C64::real(1.0)).abs() < 1e-9);
        assert!((m.edge_scalar(c1).unwrap() - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn elim_set_interning_is_stable() {
        let mut m = TddManager::new();
        let a = m.intern_elim_set(vec![1, 4, 9]);
        let b = m.intern_elim_set(vec![1, 4, 9]);
        let c = m.intern_elim_set(vec![1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(m.elim_set(a), &[1, 4, 9]);
    }

    #[test]
    fn stats_track_creation() {
        let mut m = TddManager::new();
        let l = m.terminal(C64::real(1.0));
        let h = m.terminal(C64::real(2.0));
        let _ = m.make_node(0, l, h);
        assert_eq!(m.stats().nodes_created, 1);
        assert_eq!(m.stats().peak_nodes, 1);
        let text = m.stats().to_string();
        assert!(text.contains("nodes created 1"));
        assert!(text.contains("gc runs 0"));
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_peaks() {
        let mut a = TddStats {
            nodes_created: 10,
            unique_hits: 1,
            cross_unique_hits: 1,
            add_calls: 2,
            add_hits: 1,
            cont_calls: 4,
            cont_hits: 3,
            seed_imports: 2,
            seed_hits: 1,
            gc_runs: 1,
            peak_nodes: 100,
            store_bytes: 4096,
            peak_store_bytes: 8192,
        };
        let b = TddStats {
            nodes_created: 5,
            unique_hits: 2,
            cross_unique_hits: 0,
            add_calls: 3,
            add_hits: 2,
            cont_calls: 6,
            cont_hits: 1,
            seed_imports: 1,
            seed_hits: 2,
            gc_runs: 0,
            peak_nodes: 40,
            store_bytes: 9000,
            peak_store_bytes: 9000,
        };
        a.merge(&b);
        assert_eq!(a.nodes_created, 15);
        assert_eq!(a.unique_hits, 3);
        assert_eq!(a.cross_unique_hits, 1);
        assert_eq!(a.add_calls, 5);
        assert_eq!(a.add_hits, 3);
        assert_eq!(a.cont_calls, 10);
        assert_eq!(a.cont_hits, 4);
        assert_eq!(a.seed_imports, 3);
        assert_eq!(a.seed_hits, 3);
        assert_eq!(a.gc_runs, 1);
        assert_eq!(a.peak_nodes, 100, "peak takes the max, not the sum");
        assert_eq!(a.store_bytes, 9000, "footprint takes the max, not the sum");
        assert_eq!(a.peak_store_bytes, 9000, "peak footprint maxes too");
    }

    #[test]
    fn shared_managers_hash_cons_across_instances() {
        let store = SharedTddStore::new();
        let mut a = TddManager::new_shared(&store);
        let mut b = TddManager::new_shared(&store);
        let build = |m: &mut TddManager| {
            let l = m.terminal(C64::real(1.0));
            let h = m.terminal(C64::real(2.0));
            m.make_node(0, l, h)
        };
        let ea = build(&mut a);
        let eb = build(&mut b);
        assert_eq!(ea, eb, "same structure must get the same global id");
        assert_eq!(a.arena_len(), 1, "stored once, visible to both");
        assert_eq!(b.arena_len(), 1);
        // Store-aware attribution: locals stay 0, the store counts once.
        assert_eq!(a.stats().nodes_created, 0);
        assert_eq!(b.stats().nodes_created, 0);
        let mut merged = a.stats();
        merged.merge(&b.stats());
        merged.merge(&store.stats());
        assert_eq!(
            merged.nodes_created, 1,
            "merged stats must not double-count shared allocations"
        );
        assert_eq!(merged.cross_unique_hits, 1);
        // b can read a's diagram through its own handle.
        assert!((b.eval(ea, &[1]) - C64::real(2.0)).abs() < 1e-9);
    }

    #[test]
    fn shared_normalization_matches_private_semantics() {
        let store = SharedTddStore::new();
        let mut m = TddManager::new_shared(&store);
        let low = m.terminal(C64::real(0.5));
        let high = m.terminal(C64::real(-1.0));
        let e = m.make_node(0, low, high);
        assert!((m.weight_value(e.weight) - C64::real(-1.0)).abs() < 1e-9);
        let n = m.node(e.node);
        assert_eq!(n.high.weight, WeightId::ONE);
        assert!((m.weight_value(n.low.weight) - C64::real(-0.5)).abs() < 1e-9);
    }

    #[test]
    fn seeded_cont_entries_are_imported_once_and_marked() {
        let store = SharedTddStore::new();
        let mut a = TddManager::new_shared(&store);
        let mut b = TddManager::new_shared(&store);
        let l = a.terminal(C64::real(1.0));
        let h = a.terminal(C64::real(2.0));
        let e = a.make_node(0, l, h);
        let set = a.intern_elim_set(vec![0]);
        let key: ContCacheKey = (e.node, NodeId::TERMINAL, set, 0);
        a.cont_cache.insert(key, Edge::ONE);

        let snapshot = a.snapshot_cont_cache();
        b.seed_cont_cache(&snapshot);
        assert_eq!(b.stats().seed_imports, 1);
        assert!(b.cont_seeded.contains(&key));
        // Re-seeding the same snapshot imports nothing new.
        b.seed_cont_cache(&snapshot);
        assert_eq!(b.stats().seed_imports, 1);
        // Clearing computed tables drops the seeded markers too.
        b.clear_computed_tables();
        assert!(b.cont_cache.is_empty());
        assert!(b.cont_seeded.is_empty());
    }
}
