//! Plan execution on the decision-diagram backend.

use crate::convert::from_tensor;
use crate::gc;
use crate::manager::{Edge, TddManager};
use crate::ops;
use qaec_tensornet::{ContractionPlan, PlanStep, TensorNetwork, VarOrder};
use std::time::Instant;

/// Outcome of contracting one network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ContractionResult {
    /// Root edge of the final diagram (a terminal edge for fully closed
    /// networks; read with [`TddManager::edge_scalar`]).
    pub root: Edge,
    /// Largest node count over all intermediate diagrams — the `nodes`
    /// statistic of the paper's Table I.
    pub max_nodes: usize,
    /// Largest arena occupancy observed during this contraction.
    pub peak_arena: usize,
    /// Number of plan steps executed.
    pub steps: usize,
}

/// Error returned when a driver deadline expires mid-contraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriverTimeout;

impl std::fmt::Display for DriverTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "contraction deadline exceeded")
    }
}

impl std::error::Error for DriverTimeout {}

/// Execution knobs for [`contract_network_opts`].
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverOptions {
    /// When `Some(n)`, run a mark-compact GC between steps whenever the
    /// arena exceeds `n` nodes (clears the computed tables).
    pub gc_threshold: Option<usize>,
    /// Abort with [`DriverTimeout`] once this instant passes. Checked
    /// between steps *and* — via the manager's amortised probe (see
    /// [`TddManager::set_deadline`]) — inside the `cont` recursion, so
    /// even a single huge step fires with bounded overshoot.
    pub deadline: Option<Instant>,
}

/// Executes `plan` over `network` on TDDs with full execution options.
///
/// # Errors
///
/// [`DriverTimeout`] if the deadline expires between steps.
///
/// # Panics
///
/// Panics if the plan does not match the network or an index is missing
/// from `order`.
pub fn contract_network_opts(
    m: &mut TddManager,
    network: &TensorNetwork,
    plan: &ContractionPlan,
    order: &VarOrder,
    options: DriverOptions,
) -> Result<ContractionResult, DriverTimeout> {
    m.set_deadline(options.deadline);
    let result = drive(m, network, plan, order, options);
    m.set_deadline(None);
    result
}

fn drive(
    m: &mut TddManager,
    network: &TensorNetwork,
    plan: &ContractionPlan,
    order: &VarOrder,
    options: DriverOptions,
) -> Result<ContractionResult, DriverTimeout> {
    let mut slots: Vec<Option<Edge>> = network
        .tensors()
        .iter()
        .map(|t| Some(from_tensor(m, t, order)))
        .collect();
    slots.resize(plan.n_slots.max(slots.len()), None);

    let mut max_nodes = slots
        .iter()
        .flatten()
        .map(|&e| m.node_count(e))
        .max()
        .unwrap_or(1);
    let mut peak_arena = m.arena_len();

    for step in &plan.steps {
        if let Some(deadline) = options.deadline {
            if Instant::now() >= deadline {
                return Err(DriverTimeout);
            }
        }
        let result = match step {
            PlanStep::Contract {
                a,
                b,
                eliminate,
                result,
            } => {
                let ea = slots[*a].take().expect("operand a live");
                let eb = slots[*b].take().expect("operand b live");
                let mut levels: Vec<u32> = eliminate.iter().map(|&i| order.level(i)).collect();
                levels.sort_unstable();
                let set = m.intern_elim_set(levels);
                // One plan step = one weight scope (no-op unless the
                // manager uses scoped shared-store interning).
                m.begin_weight_scope();
                let e = ops::try_cont(m, ea, eb, set)?;
                slots[*result] = Some(e);
                e
            }
            PlanStep::SumOut {
                t,
                eliminate,
                result,
            } => {
                let et = slots[*t].take().expect("operand live");
                let mut levels: Vec<u32> = eliminate.iter().map(|&i| order.level(i)).collect();
                levels.sort_unstable();
                let set = m.intern_elim_set(levels);
                m.begin_weight_scope();
                let e = ops::try_cont(m, et, Edge::ONE, set)?;
                slots[*result] = Some(e);
                e
            }
        };
        max_nodes = max_nodes.max(m.node_count(result));
        peak_arena = peak_arena.max(m.arena_len());

        if let Some(threshold) = options.gc_threshold {
            // Shared stores are append-only: collection is unavailable,
            // memory is bounded by cross-thread sharing instead.
            if m.supports_gc() && m.arena_len() > threshold {
                let roots: Vec<Edge> = slots.iter().flatten().copied().collect();
                let kept = gc::collect(m, &roots);
                let mut it = kept.into_iter();
                for slot in slots.iter_mut() {
                    if slot.is_some() {
                        *slot = Some(it.next().expect("remapped root"));
                    }
                }
            }
        }
    }

    let mut root = (0..slots.len())
        .rev()
        .find_map(|i| slots[i].take())
        .unwrap_or(Edge::ONE);
    if plan.free_loops > 0 {
        m.begin_weight_scope();
        root = Edge {
            node: root.node,
            weight: m.wscale_real(root.weight, (plan.free_loops as f64).exp2()),
        };
    }
    Ok(ContractionResult {
        root,
        max_nodes,
        peak_arena,
        steps: plan.steps.len(),
    })
}

/// [`contract_network_opts`] with a GC threshold and no deadline.
pub fn contract_network_with(
    m: &mut TddManager,
    network: &TensorNetwork,
    plan: &ContractionPlan,
    order: &VarOrder,
    gc_threshold: Option<usize>,
) -> ContractionResult {
    contract_network_opts(
        m,
        network,
        plan,
        order,
        DriverOptions {
            gc_threshold,
            deadline: None,
        },
    )
    .expect("no deadline configured")
}

/// [`contract_network_with`] without garbage collection.
pub fn contract_network(
    m: &mut TddManager,
    network: &TensorNetwork,
    plan: &ContractionPlan,
    order: &VarOrder,
) -> ContractionResult {
    contract_network_with(m, network, plan, order, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaec_math::{Matrix, C64};
    use qaec_tensornet::{IndexId, Strategy, Tensor};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_unitary_2x2(rng: &mut StdRng) -> Matrix {
        // U3-style parameterization.
        let theta: f64 = rng.gen_range(0.0..std::f64::consts::PI);
        let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let lambda: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
        let c = C64::real((theta / 2.0).cos());
        let s = C64::real((theta / 2.0).sin());
        Matrix::from_rows(&[
            vec![c, -(C64::cis(lambda) * s)],
            vec![C64::cis(phi) * s, C64::cis(phi + lambda) * c],
        ])
    }

    /// Random single-wire chains: TDD result must equal dense result.
    #[test]
    fn agrees_with_dense_backend_on_chains() {
        let mut rng = StdRng::seed_from_u64(97);
        for trial in 0..10 {
            let n = 3 + (trial % 4);
            let mut net = TensorNetwork::new();
            for k in 0..n {
                let input = IndexId(k as u32);
                let output = IndexId(((k + 1) % n) as u32);
                net.add(Tensor::from_matrix(
                    &random_unitary_2x2(&mut rng),
                    &[output],
                    &[input],
                ));
            }
            let order = VarOrder::from_sequence((0..n as u32).map(IndexId));
            for strategy in [
                Strategy::Sequential,
                Strategy::MinFill,
                Strategy::GreedySize,
            ] {
                let plan = net.plan(strategy);
                let dense = net.contract_dense(&plan).as_scalar().unwrap();
                let mut m = TddManager::new();
                let result = contract_network(&mut m, &net, &plan, &order);
                let got = m.edge_scalar(result.root).expect("scalar");
                assert!(
                    (got - dense).abs() < 1e-8,
                    "trial {trial} {strategy:?}: dense {dense} vs tdd {got}"
                );
                assert!(result.max_nodes >= 1);
            }
        }
    }

    #[test]
    fn two_qubit_network_with_open_indices() {
        // CX · CX = I with open boundary indices; verify via eval.
        let cx = {
            let (o, z) = (C64::ONE, C64::ZERO);
            Matrix::from_rows(&[
                vec![o, z, z, z],
                vec![z, o, z, z],
                vec![z, z, z, o],
                vec![z, z, o, z],
            ])
        };
        let mut net = TensorNetwork::new();
        // first CX: in (0,1) → out (2,3); second: in (2,3) → out (4,5)
        net.add(Tensor::from_matrix(
            &cx,
            &[IndexId(2), IndexId(3)],
            &[IndexId(0), IndexId(1)],
        ));
        net.add(Tensor::from_matrix(
            &cx,
            &[IndexId(4), IndexId(5)],
            &[IndexId(2), IndexId(3)],
        ));
        for i in [0u32, 1, 4, 5] {
            net.mark_open(IndexId(i));
        }
        let order = VarOrder::from_sequence((0..6).map(IndexId));
        let plan = net.plan(Strategy::MinFill);
        let mut m = TddManager::new();
        let result = contract_network(&mut m, &net, &plan, &order);
        // Result should be δ(0,4)·δ(1,5): identity on two qubits.
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    for d in 0..2u8 {
                        let mut assignment = [0u8; 6];
                        assignment[0] = a;
                        assignment[1] = b;
                        assignment[4] = c;
                        assignment[5] = d;
                        let v = m.eval(result.root, &assignment);
                        let expected = if a == c && b == d {
                            C64::ONE
                        } else {
                            C64::ZERO
                        };
                        assert!((v - expected).abs() < 1e-9, "{a}{b}|{c}{d}");
                    }
                }
            }
        }
    }

    #[test]
    fn gc_threshold_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(101);
        let n = 6;
        let mut net = TensorNetwork::new();
        for k in 0..n {
            let input = IndexId(k as u32);
            let output = IndexId(((k + 1) % n) as u32);
            net.add(Tensor::from_matrix(
                &random_unitary_2x2(&mut rng),
                &[output],
                &[input],
            ));
        }
        let order = VarOrder::from_sequence((0..n as u32).map(IndexId));
        let plan = net.plan(Strategy::Sequential);
        let mut m1 = TddManager::new();
        let r1 = contract_network(&mut m1, &net, &plan, &order);
        let mut m2 = TddManager::new();
        let r2 = contract_network_with(&mut m2, &net, &plan, &order, Some(1));
        let v1 = m1.edge_scalar(r1.root).unwrap();
        let v2 = m2.edge_scalar(r2.root).unwrap();
        assert!((v1 - v2).abs() < 1e-9);
        assert!(m2.stats().gc_runs > 0, "tiny threshold must trigger GC");
    }

    #[test]
    fn deadline_mid_step_fires_with_bounded_overshoot() {
        // Regression: the deadline used to be checked only between plan
        // steps, so a plan whose *single* step was huge overran it by
        // the full step cost. With the in-recursion probe the driver
        // must abort well before the contraction completes.
        let mut rng = StdRng::seed_from_u64(33);
        let rank = 12u32;
        let idx: Vec<IndexId> = (0..rank).map(IndexId).collect();
        let random = |rng: &mut StdRng| {
            let data: Vec<C64> = (0..1usize << rank)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            qaec_tensornet::Tensor::from_flat(idx.clone(), data)
        };
        let mut net = TensorNetwork::new();
        net.add(random(&mut rng));
        net.add(random(&mut rng));
        let order = VarOrder::from_sequence(idx.iter().copied());
        let plan = net.plan(Strategy::Sequential);
        assert_eq!(plan.steps.len(), 1, "one huge step by construction");

        // Reference run: how long the full contraction takes here.
        let mut reference = TddManager::new();
        let started = Instant::now();
        let full = contract_network_opts(
            &mut reference,
            &net,
            &plan,
            &order,
            DriverOptions::default(),
        )
        .expect("no deadline");
        let total = started.elapsed();

        // Deadline at a fraction of that: the run must abort mid-step,
        // long before the full contraction cost.
        let mut m = TddManager::new();
        let started = Instant::now();
        let result = contract_network_opts(
            &mut m,
            &net,
            &plan,
            &order,
            DriverOptions {
                gc_threshold: None,
                deadline: Some(started + total / 20),
            },
        );
        assert_eq!(result.unwrap_err(), DriverTimeout);
        assert!(
            started.elapsed() < total,
            "overshoot unbounded: {:?} vs full cost {total:?}",
            started.elapsed()
        );
        assert!(full.max_nodes > 1);
    }

    #[test]
    fn free_loops_scale_result() {
        let mut net = TensorNetwork::new();
        net.add(Tensor::delta(IndexId(0), IndexId(1)));
        net.close_index(IndexId(5));
        net.close_index(IndexId(6));
        let order = VarOrder::from_sequence([IndexId(0), IndexId(1)]);
        let plan = net.plan(Strategy::Sequential);
        let mut m = TddManager::new();
        let result = contract_network(&mut m, &net, &plan, &order);
        // tr(I)·2·2 = 8.
        assert!((m.edge_scalar(result.root).unwrap() - C64::real(8.0)).abs() < 1e-9);
    }
}
