//! Tolerance-canonical interning of complex edge weights.
//!
//! Decision-diagram canonicity requires that "the same" weight always maps
//! to the same identity, even after different round-off histories. The
//! [`WeightTable`] interns complex values with an absolute tolerance:
//! values within `tol` (Chebyshev distance) of an already-interned value
//! reuse its [`WeightId`]. Edges then carry a `u32` handle, making
//! unique-table and computed-table keys exact and cheap to hash.

use crate::fxhash::FxHashMap;
use qaec_math::C64;

/// Handle to an interned complex weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WeightId(pub(crate) u32);

impl WeightId {
    /// The interned value 0.
    pub const ZERO: WeightId = WeightId(0);
    /// The interned value 1.
    pub const ONE: WeightId = WeightId(1);

    /// Whether this is the interned zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == WeightId::ZERO
    }

    /// Whether this is the interned one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == WeightId::ONE
    }
}

/// Interning table for complex weights.
///
/// # Example
///
/// ```
/// use qaec_math::C64;
/// use qaec_tdd::weight::{WeightId, WeightTable};
///
/// let mut table = WeightTable::new(1e-10);
/// let a = table.intern(C64::new(0.5, 0.0));
/// let b = table.intern(C64::new(0.5 + 1e-12, -1e-13));
/// assert_eq!(a, b); // merged within tolerance
/// assert_eq!(table.intern(C64::ONE), WeightId::ONE);
/// ```
#[derive(Clone, Debug)]
pub struct WeightTable {
    values: Vec<C64>,
    buckets: FxHashMap<(i64, i64), Vec<u32>>,
    tol: f64,
}

impl WeightTable {
    /// Creates a table with the given absolute tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn new(tol: f64) -> Self {
        assert!(tol > 0.0 && tol.is_finite(), "tolerance must be positive");
        let mut table = WeightTable {
            values: Vec::new(),
            buckets: FxHashMap::default(),
            tol,
        };
        let zero = table.intern_raw(C64::ZERO);
        let one = table.intern_raw(C64::ONE);
        debug_assert_eq!(zero, WeightId::ZERO);
        debug_assert_eq!(one, WeightId::ONE);
        table
    }

    /// The interning tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tol
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value behind a handle.
    #[inline]
    pub fn value(&self, w: WeightId) -> C64 {
        self.values[w.0 as usize]
    }

    fn bucket_key(&self, z: C64) -> (i64, i64) {
        // Bucket width is 2·tol so a probe of the 3×3 neighbourhood covers
        // every value within tol.
        let w = 2.0 * self.tol;
        ((z.re / w).round() as i64, (z.im / w).round() as i64)
    }

    /// Interns a value, merging with an existing one within tolerance.
    pub fn intern(&mut self, z: C64) -> WeightId {
        debug_assert!(z.is_finite(), "non-finite weight {z}");
        // Snap near-zero to the canonical zero.
        if z.re.abs() <= self.tol && z.im.abs() <= self.tol {
            return WeightId::ZERO;
        }
        self.intern_raw(z)
    }

    fn intern_raw(&mut self, z: C64) -> WeightId {
        let (kr, ki) = self.bucket_key(z);
        for dr in -1..=1i64 {
            for di in -1..=1i64 {
                // The bucket key saturates at i64::MAX/MIN for huge values
                // (the `as i64` cast clamps), so the probe must saturate too.
                if let Some(ids) = self
                    .buckets
                    .get(&(kr.saturating_add(dr), ki.saturating_add(di)))
                {
                    for &id in ids {
                        let v = self.values[id as usize];
                        if (v.re - z.re).abs() <= self.tol && (v.im - z.im).abs() <= self.tol {
                            return WeightId(id);
                        }
                    }
                }
            }
        }
        let id = self.values.len() as u32;
        self.values.push(z);
        self.buckets.entry((kr, ki)).or_default().push(id);
        WeightId(id)
    }

    /// Interned product `a·b`.
    pub fn mul(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a.is_zero() || b.is_zero() {
            return WeightId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let z = self.value(a) * self.value(b);
        self.intern(z)
    }

    /// Interned sum `a + b`.
    pub fn add(&mut self, a: WeightId, b: WeightId) -> WeightId {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let z = self.value(a) + self.value(b);
        self.intern(z)
    }

    /// Interned quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is the zero weight.
    pub fn div(&mut self, a: WeightId, b: WeightId) -> WeightId {
        assert!(!b.is_zero(), "division by the zero weight");
        if a.is_zero() {
            return WeightId::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return WeightId::ONE;
        }
        let z = self.value(a) / self.value(b);
        self.intern(z)
    }

    /// Interned complex conjugate.
    pub fn conj(&mut self, a: WeightId) -> WeightId {
        let z = self.value(a).conj();
        self.intern(z)
    }

    /// Interned scalar multiple by a real factor.
    pub fn scale_real(&mut self, a: WeightId, factor: f64) -> WeightId {
        if a.is_zero() || factor == 0.0 {
            if factor == 0.0 {
                return WeightId::ZERO;
            }
            return a;
        }
        let z = self.value(a) * factor;
        self.intern(z)
    }

    /// The modulus of the value behind `a`.
    pub fn magnitude(&self, a: WeightId) -> f64 {
        self.value(a).abs()
    }

    /// Bytes of backing storage the table holds: value-arena capacity
    /// plus the bucket index (map capacity with one control byte per
    /// bucket, the std hash-table layout, plus each bucket's id list) —
    /// the private counterpart of the shared store's byte accounting.
    pub fn bytes_used(&self) -> usize {
        let entry = std::mem::size_of::<(i64, i64)>() + std::mem::size_of::<Vec<u32>>();
        self.values.capacity() * std::mem::size_of::<C64>()
            + self.buckets.capacity() * (entry + 1)
            + self
                .buckets
                .values()
                .map(|ids| ids.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let table = WeightTable::new(1e-10);
        assert_eq!(table.value(WeightId::ZERO), C64::ZERO);
        assert_eq!(table.value(WeightId::ONE), C64::ONE);
        assert!(WeightId::ZERO.is_zero());
        assert!(WeightId::ONE.is_one());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn near_values_merge() {
        let mut t = WeightTable::new(1e-10);
        let a = t.intern(C64::new(0.25, 0.75));
        let b = t.intern(C64::new(0.25 + 5e-11, 0.75 - 5e-11));
        assert_eq!(a, b);
        let c = t.intern(C64::new(0.25 + 5e-9, 0.75));
        assert_ne!(a, c);
    }

    #[test]
    fn near_zero_snaps() {
        let mut t = WeightTable::new(1e-10);
        assert_eq!(t.intern(C64::new(1e-12, -1e-12)), WeightId::ZERO);
        assert_ne!(t.intern(C64::new(1e-8, 0.0)), WeightId::ZERO);
    }

    #[test]
    fn boundary_values_across_buckets_still_merge() {
        // Values straddling a bucket boundary must still be unified by the
        // 3×3 probe.
        let mut t = WeightTable::new(1e-10);
        let w = 2e-10; // bucket width
        let base = 17.0 * w + w / 2.0; // near a boundary
        let a = t.intern(C64::new(base - 4e-11, 0.0));
        let b = t.intern(C64::new(base + 4e-11, 0.0));
        assert_eq!(a, b);
    }

    #[test]
    fn arithmetic() {
        let mut t = WeightTable::new(1e-10);
        let half = t.intern(C64::real(0.5));
        let two = t.intern(C64::real(2.0));
        assert_eq!(t.mul(half, two), WeightId::ONE);
        assert_eq!(t.mul(half, WeightId::ZERO), WeightId::ZERO);
        assert_eq!(t.add(WeightId::ZERO, half), half);
        let one = t.add(half, half);
        assert_eq!(one, WeightId::ONE);
        assert_eq!(t.div(half, half), WeightId::ONE);
        assert_eq!(t.div(WeightId::ZERO, two), WeightId::ZERO);
        let i = t.intern(C64::I);
        let minus_i = t.conj(i);
        assert_eq!(t.value(minus_i), C64::new(0.0, -1.0));
        assert_eq!(t.scale_real(half, 4.0), two);
    }

    #[test]
    #[should_panic(expected = "division by the zero weight")]
    fn division_by_zero_panics() {
        let mut t = WeightTable::new(1e-10);
        let one = WeightId::ONE;
        t.div(one, WeightId::ZERO);
    }

    #[test]
    fn cancellation_in_add_returns_zero() {
        let mut t = WeightTable::new(1e-10);
        let a = t.intern(C64::real(0.3));
        let b = t.intern(C64::real(-0.3));
        assert_eq!(t.add(a, b), WeightId::ZERO);
    }

    #[test]
    fn magnitudes() {
        let mut t = WeightTable::new(1e-10);
        let z = t.intern(C64::new(3.0, 4.0));
        assert!((t.magnitude(z) - 5.0).abs() < 1e-12);
    }
}
