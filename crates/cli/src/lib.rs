//! Implementation of the `qaec` command-line tool.
//!
//! Subcommands:
//!
//! * `qaec info <circuit.qasm>` — statistics and an ASCII rendering;
//! * `qaec fidelity <ideal.qasm> <noisy.qasm>` — the Jamiolkowski
//!   fidelity (algorithm selectable);
//! * `qaec check <ideal.qasm> <noisy.qasm> --epsilon ε` — the
//!   ε-equivalence decision; process exit code 0 = equivalent,
//!   1 = not equivalent, 2 = usage/runtime error, 3 = inconclusive
//!   (only `--algorithm mpo`, when the certified interval straddles
//!   the threshold);
//! * `qaec sweep <ideal.qasm> <noisy.qasm> --epsilon ε --noise p,…` (or
//!   `--epsilons ε,…`) — compile the pair **once** and re-check it at
//!   every point on the compiled plan, one row per point.
//!
//! * `qaec serve` — the long-running batch query layer: line-delimited
//!   JSON requests on stdin (or `--listen`/`--unix` sockets) answered
//!   from a content-keyed cache of compiled sessions (see [`serve`] and
//!   `docs/PROTOCOL.md`).
//!
//! `check` and `sweep` accept `--json` for machine-readable output
//! (flat objects, the same hand-rolled writer as the bench artifacts);
//! `serve` responses embed the *same* objects, so a field documented
//! once in `docs/PROTOCOL.md` means the same thing everywhere.
//!
//! Noisy circuits are OpenQASM 2 files with `// qaec.noise:` directives
//! (see `qaec_circuit::qasm`).

pub mod serve;

use qaec::{
    check_equivalence, fidelity_alg1, fidelity_alg2, fidelity_monte_carlo, AlgorithmChoice,
    CheckOptions, Checker, EpsilonPoint, EquivalenceReport, SharedTableMode, StoreReclaimMode,
    SweepPoint, TddStats, Verdict,
};
use qaec_bench::json;
use qaec_circuit::{qasm, Circuit};
use qaec_tensornet::Strategy;
use serve::ServeArgs;
use std::time::{Duration, Instant};

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `qaec info <file>`
    Info {
        /// Circuit file.
        file: String,
    },
    /// `qaec fidelity <ideal> <noisy> [options]`
    Fidelity {
        /// Ideal circuit file.
        ideal: String,
        /// Noisy circuit file.
        noisy: String,
        /// Shared options.
        options: CliOptions,
    },
    /// `qaec check <ideal> <noisy> --epsilon ε [options]`
    Check {
        /// Ideal circuit file.
        ideal: String,
        /// Noisy circuit file.
        noisy: String,
        /// The error threshold.
        epsilon: f64,
        /// Shared options.
        options: CliOptions,
    },
    /// `qaec sweep <ideal> <noisy> (--epsilon ε --noise p,… | --epsilons ε,…)`
    Sweep {
        /// Ideal circuit file.
        ideal: String,
        /// Noisy circuit file.
        noisy: String,
        /// The error threshold for noise sweeps.
        epsilon: Option<f64>,
        /// Noise strengths to sweep (`--noise`).
        noise: Option<Vec<f64>>,
        /// Thresholds to sweep at the file's noise (`--epsilons`).
        epsilons: Option<Vec<f64>>,
        /// Shared options.
        options: CliOptions,
    },
    /// `qaec serve [--cache-bytes n] [--listen addr | --unix path]`
    Serve {
        /// Serving configuration (cache budget, transport, checker
        /// options).
        args: ServeArgs,
    },
    /// `qaec help`
    Help,
}

/// Options shared by `fidelity` and `check`.
#[derive(Clone, Debug, PartialEq)]
pub struct CliOptions {
    /// Algorithm selection.
    pub algorithm: AlgorithmChoice,
    /// Monte Carlo sample count (`fidelity --algorithm mc`).
    pub mc_samples: Option<usize>,
    /// Monte Carlo seed.
    pub mc_seed: u64,
    /// Contraction strategy.
    pub strategy: Strategy,
    /// Per-run timeout.
    pub timeout: Option<Duration>,
    /// Worker threads for Algorithm I and the Monte-Carlo estimator.
    pub threads: usize,
    /// Shared concurrent TDD store across workers (`--shared-table`).
    pub shared_table: SharedTableMode,
    /// Shared-store reclamation at quiescent boundaries
    /// (`--store-reclaim`).
    pub store_reclaim: StoreReclaimMode,
    /// Maximum lane width for vectorised noise sweeps (`--lanes`).
    pub sweep_lanes: usize,
    /// Cross-term computed-table seeding between workers
    /// (`--seed-cache on|off`; on by default, a no-op off the shared
    /// store).
    pub seed_cache: bool,
    /// MPO singular-value truncation threshold (`--svd-threshold`;
    /// Algorithm III only).
    pub svd_threshold: f64,
    /// MPO bond-dimension cap (`--max-bond`; Algorithm III only).
    pub max_bond: usize,
    /// Enable §IV-C local optimisations.
    pub optimize: bool,
    /// Print decision-diagram statistics after the result.
    pub verbose: bool,
    /// Emit machine-readable JSON instead of text (`check` / `sweep`).
    pub json: bool,
}

impl Default for CliOptions {
    fn default() -> Self {
        let core = CheckOptions::default();
        CliOptions {
            algorithm: AlgorithmChoice::Auto,
            mc_samples: None,
            mc_seed: 0,
            strategy: Strategy::MinFill,
            timeout: None,
            threads: qaec::default_threads(),
            shared_table: qaec::default_shared_table(),
            store_reclaim: qaec::default_store_reclaim(),
            sweep_lanes: qaec::default_sweep_lanes(),
            seed_cache: true,
            svd_threshold: core.svd_threshold,
            max_bond: core.max_bond,
            optimize: false,
            verbose: false,
            json: false,
        }
    }
}

impl CliOptions {
    pub(crate) fn to_check_options(&self) -> CheckOptions {
        CheckOptions {
            algorithm: self.algorithm,
            strategy: self.strategy,
            threads: self.threads,
            shared_table: self.shared_table,
            store_reclaim: self.store_reclaim,
            sweep_lanes: self.sweep_lanes,
            seed_cont_cache: self.seed_cache,
            svd_threshold: self.svd_threshold,
            max_bond: self.max_bond,
            local_optimization: self.optimize,
            swap_elimination: self.optimize,
            deadline: self.timeout.map(|t| Instant::now() + t),
            ..CheckOptions::default()
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
qaec — approximate equivalence checking of noisy quantum circuits

USAGE:
    qaec info <circuit.qasm>
    qaec fidelity <ideal.qasm> <noisy.qasm> [OPTIONS]
    qaec check <ideal.qasm> <noisy.qasm> --epsilon <ε> [OPTIONS]
    qaec sweep <ideal.qasm> <noisy.qasm> --epsilon <ε> --noise <p,...> [OPTIONS]
    qaec sweep <ideal.qasm> <noisy.qasm> --epsilons <ε,...> [OPTIONS]
    qaec serve [--cache-bytes <n[k|m|g]>] [--listen <host:port> | --unix <path>] [OPTIONS]

SERVE:
    Long-running batch query mode: line-delimited JSON requests
    (op = check | sweep_epsilon | sweep_noise | stats) on stdin — or,
    with --listen/--unix, per-connection streams — answered from a
    content-keyed cache of compiled sessions. Repeated pairs hit the
    cache; --cache-bytes budgets its warm-store footprint (LRU
    eviction). Wire format: docs/PROTOCOL.md. Serve takes the checker
    OPTIONS below except --timeout, --samples/--seed and --json
    (responses are always JSON); --threads also sets how many distinct
    pairs a stdin batch checks concurrently. A final stats footer goes
    to stderr.

SWEEP:
    Compiles the pair once (validation, algorithm selection, variable
    ordering, network construction, contraction planning) and re-checks
    it at every point on the compiled artifacts — one output row per
    point. `--noise` re-instantiates every noise site at each strength;
    `--epsilons` re-decides the compiled noise at each threshold.

OPTIONS:
    --algorithm <auto|1|2|mpo|mc>
                               checking algorithm (default: auto — the
                               portfolio: a cheap MPO interval pass on
                               wide, weakly-coupled pairs, escalating
                               to an exact backend whenever the
                               interval cannot decide)
    --samples <n>              Monte Carlo samples (mc only, default 2000)
    --seed <n>                 Monte Carlo seed (default 0)
    --strategy <sequential|greedy|min-degree|min-fill>
                               contraction order (default: min-fill)
    --timeout <seconds>        abort after this long (default: none)
    --threads <n>              worker threads: Algorithm I / MC steal
                               trace terms (composes with --epsilon
                               early termination), Algorithm II runs
                               independent contraction-plan steps —
                               bit-identical results at any count
                               (default: QAEC_THREADS env var, else 1)
    --shared-table <on|off|auto>
                               share one concurrent TDD store across the
                               workers (auto = on when --threads > 1 for
                               Algorithm I / MC, and always for
                               Algorithm II; default: QAEC_SHARED_TABLE
                               env var, else auto). Shared runs
                               hash-cons sub-diagrams across threads and
                               are bit-reproducible for every thread
                               count; off restores the fastest private
                               sequential Algorithm II driver
    --lanes <n>                sweep: maximum lane width for the
                               vectorised Algorithm II noise sweep —
                               points are batched and contracted in
                               multi-lane passes (rounded down to 1, 2,
                               4 or 8; 1 forces the scalar per-point
                               path; results are bit-identical either
                               way; default: QAEC_SWEEP_LANES env var,
                               else 8)
    --store-reclaim <on|off|auto>
                               retire shared-store arenas at quiescent
                               boundaries (between sweep points / serve
                               queries): on reclaims at every boundary,
                               auto only once the store passes a size
                               threshold, off never (the bit-exact
                               escape hatch — though reclamation itself
                               is value-transparent, results are
                               bit-identical either way; default:
                               QAEC_STORE_RECLAIM env var, else auto)
    --seed-cache <on|off>      seed each worker's contraction cache from
                               the heaviest completed term (shared-table
                               runs only; default on — profiled value-
                               transparent; off is the escape hatch)
    --svd-threshold <t>        MPO (algorithm mpo / the auto portfolio):
                               discard singular values below t·σ_max at
                               each truncation; every discard widens the
                               certified fidelity interval by the proven
                               residual (default 1e-8)
    --max-bond <n>             MPO: bond-dimension cap; exceeding it
                               truncates (accounted the same way;
                               default 16)
    --noise <p,...>            sweep: comma-separated noise strengths
                               (each replaces every noise site's single
                               scalar parameter; requires --epsilon)
    --epsilons <e,...>         sweep: comma-separated thresholds to
                               decide at the file's noise level
    --json                     check/sweep: emit machine-readable JSON
                               (flat objects, bench-artifact style)
    --optimize                 enable local cancellation + SWAP elimination
    --verbose                  print decision-diagram statistics

EXIT CODES (check):
    0 = equivalent, 1 = not equivalent, 2 = error,
    3 = inconclusive (--algorithm mpo only: the certified interval
        straddles 1 − ε; re-run exact or loosen --svd-threshold)
";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => {
            let file = it
                .next()
                .ok_or_else(|| "info: missing circuit file".to_string())?;
            Ok(Command::Info { file: file.clone() })
        }
        "serve" => {
            let rest: Vec<String> = it.cloned().collect();
            let args = serve::parse_serve_args(&rest)?;
            Ok(Command::Serve { args })
        }
        "fidelity" | "check" | "sweep" => {
            let ideal = it
                .next()
                .ok_or_else(|| format!("{sub}: missing ideal circuit file"))?
                .clone();
            let noisy = it
                .next()
                .ok_or_else(|| format!("{sub}: missing noisy circuit file"))?
                .clone();
            let mut options = CliOptions::default();
            let mut epsilon: Option<f64> = None;
            let mut noise: Option<Vec<f64>> = None;
            let mut epsilons: Option<Vec<f64>> = None;
            let parse_list = |flag: &str, text: &str| -> Result<Vec<f64>, String> {
                let values: Result<Vec<f64>, _> =
                    text.split(',').map(|v| v.trim().parse::<f64>()).collect();
                match values {
                    Ok(v) if !v.is_empty() => Ok(v),
                    _ => Err(format!("bad {flag} list `{text}`")),
                }
            };
            let rest: Vec<&String> = it.collect();
            let mut k = 0;
            while k < rest.len() {
                // `--flag value` and `--flag=value` are both accepted.
                let raw = rest[k].as_str();
                let (flag, inline) = match raw.split_once('=') {
                    Some((f, v)) => (f, Some(v)),
                    None => (raw, None),
                };
                let value = |k: &mut usize| -> Result<&str, String> {
                    if let Some(v) = inline {
                        return Ok(v);
                    }
                    *k += 1;
                    rest.get(*k)
                        .map(|s| s.as_str())
                        .ok_or_else(|| format!("missing value for {flag}"))
                };
                // Boolean flags must not silently swallow an inline
                // value (`--seed-cache=false` would otherwise *enable*
                // the flag).
                let boolean = |inline: Option<&str>| -> Result<(), String> {
                    match inline {
                        None => Ok(()),
                        Some(v) => Err(format!("{flag} takes no value (got `{v}`)")),
                    }
                };
                match flag {
                    "--epsilon" => {
                        epsilon = Some(
                            value(&mut k)?
                                .parse::<f64>()
                                .map_err(|_| "bad --epsilon value".to_string())?,
                        );
                    }
                    "--algorithm" => {
                        match value(&mut k)? {
                            "auto" => options.algorithm = AlgorithmChoice::Auto,
                            "1" | "I" | "i" => options.algorithm = AlgorithmChoice::AlgorithmI,
                            "2" | "II" | "ii" => options.algorithm = AlgorithmChoice::AlgorithmII,
                            "mpo" | "3" | "III" | "iii" => options.algorithm = AlgorithmChoice::Mpo,
                            "mc" => options.mc_samples = Some(options.mc_samples.unwrap_or(2000)),
                            other => return Err(format!("unknown algorithm `{other}`")),
                        };
                    }
                    "--samples" => {
                        options.mc_samples = Some(
                            value(&mut k)?
                                .parse::<usize>()
                                .map_err(|_| "bad --samples value".to_string())?,
                        );
                    }
                    "--seed" => {
                        options.mc_seed = value(&mut k)?
                            .parse::<u64>()
                            .map_err(|_| "bad --seed value".to_string())?;
                    }
                    "--strategy" => {
                        options.strategy = match value(&mut k)? {
                            "sequential" => Strategy::Sequential,
                            "greedy" => Strategy::GreedySize,
                            "min-degree" => Strategy::MinDegree,
                            "min-fill" => Strategy::MinFill,
                            other => return Err(format!("unknown strategy `{other}`")),
                        };
                    }
                    "--timeout" => {
                        let secs = value(&mut k)?
                            .parse::<u64>()
                            .map_err(|_| "bad --timeout value".to_string())?;
                        options.timeout = Some(Duration::from_secs(secs));
                    }
                    "--threads" => {
                        options.threads = value(&mut k)?
                            .parse::<usize>()
                            .map_err(|_| "bad --threads value".to_string())?;
                    }
                    "--lanes" => {
                        options.sweep_lanes = value(&mut k)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| "bad --lanes value".to_string())?;
                    }
                    "--shared-table" => {
                        options.shared_table = match value(&mut k)? {
                            "on" => SharedTableMode::On,
                            "off" => SharedTableMode::Off,
                            "auto" => SharedTableMode::Auto,
                            other => return Err(format!("unknown shared-table mode `{other}`")),
                        };
                    }
                    "--store-reclaim" => {
                        options.store_reclaim = match value(&mut k)? {
                            "on" => StoreReclaimMode::On,
                            "off" => StoreReclaimMode::Off,
                            "auto" => StoreReclaimMode::Auto,
                            other => return Err(format!("unknown store-reclaim mode `{other}`")),
                        };
                    }
                    "--seed-cache" => {
                        options.seed_cache = match value(&mut k)? {
                            "on" => true,
                            "off" => false,
                            other => return Err(format!("unknown seed-cache mode `{other}`")),
                        };
                    }
                    "--svd-threshold" => {
                        options.svd_threshold = value(&mut k)?
                            .parse::<f64>()
                            .ok()
                            .filter(|t| t.is_finite() && *t >= 0.0)
                            .ok_or_else(|| "bad --svd-threshold value".to_string())?;
                    }
                    "--max-bond" => {
                        options.max_bond = value(&mut k)?
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| "bad --max-bond value".to_string())?;
                    }
                    "--noise" => {
                        noise = Some(parse_list("--noise", value(&mut k)?)?);
                    }
                    "--epsilons" => {
                        epsilons = Some(parse_list("--epsilons", value(&mut k)?)?);
                    }
                    "--json" => {
                        boolean(inline)?;
                        options.json = true;
                    }
                    "--optimize" => {
                        boolean(inline)?;
                        options.optimize = true;
                    }
                    "--verbose" => {
                        boolean(inline)?;
                        options.verbose = true;
                    }
                    other => return Err(format!("unknown flag `{other}`")),
                }
                k += 1;
            }
            match sub {
                "check" => {
                    let epsilon =
                        epsilon.ok_or_else(|| "check: --epsilon is required".to_string())?;
                    Ok(Command::Check {
                        ideal,
                        noisy,
                        epsilon,
                        options,
                    })
                }
                "sweep" => {
                    match (&noise, &epsilons) {
                        (Some(_), Some(_)) => {
                            return Err("sweep: --noise and --epsilons are exclusive".to_string())
                        }
                        (None, None) => {
                            return Err(
                                "sweep: one of --noise or --epsilons is required".to_string()
                            )
                        }
                        (Some(_), None) if epsilon.is_none() => {
                            return Err("sweep: --noise requires --epsilon".to_string())
                        }
                        _ => {}
                    }
                    Ok(Command::Sweep {
                        ideal,
                        noisy,
                        epsilon,
                        noise,
                        epsilons,
                        options,
                    })
                }
                _ => Ok(Command::Fidelity {
                    ideal,
                    noisy,
                    options,
                }),
            }
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// The `check --json` object — also the payload grafted into `serve`
/// check responses, so both frontends emit exactly the fields
/// `docs/PROTOCOL.md` documents.
pub(crate) fn check_json(report: &EquivalenceReport) -> json::Object {
    let mut object = json::Object::new()
        .string("verdict", &report.verdict.to_string())
        .number("fidelity_lower", report.fidelity_bounds.0, 12)
        .number("fidelity_upper", report.fidelity_bounds.1, 12)
        .number("epsilon", report.epsilon, 12)
        .string("algorithm", &report.algorithm.to_string())
        .string("method", report.algorithm.wire_name())
        .int("terms_computed", report.terms_computed as u64)
        .int("total_terms", report.total_terms as u64)
        .int("max_nodes", report.max_nodes as u64)
        .number("wall_ms", report.elapsed.as_secs_f64() * 1e3, 3);
    // Algorithm III metadata rides along only when the MPO pass ran, so
    // pre-existing consumers of exact-check objects see an unchanged
    // field set.
    if let Some(trunc_error) = report.trunc_error {
        object = object.number("trunc_error", trunc_error, 15);
    }
    if let Some(bond_max) = report.bond_max {
        object = object.int("bond_max", bond_max as u64);
    }
    if let Some(cross_check) = report.cross_check {
        object = object.boolean("cross_check", cross_check);
    }
    object
}

/// One `sweep --noise --json` row (also a `serve` sweep_noise point).
pub(crate) fn noise_point_json(strength: f64, point: &SweepPoint) -> json::Object {
    json::Object::new()
        .number("noise", strength, 6)
        .number("fidelity", point.fidelity, 12)
        .string("verdict", &point.verdict.to_string())
        .int("max_nodes", point.max_nodes as u64)
        .number("wall_ms", point.elapsed.as_secs_f64() * 1e3, 3)
}

/// One `sweep --epsilons --json` row (also a `serve` sweep_epsilon
/// point).
pub(crate) fn epsilon_point_json(point: &EpsilonPoint) -> json::Object {
    json::Object::new()
        .number("epsilon", point.epsilon, 12)
        .number("fidelity_lower", point.fidelity_bounds.0, 12)
        .number("fidelity_upper", point.fidelity_bounds.1, 12)
        .string("verdict", &point.verdict.to_string())
}

fn write_stats(
    out: &mut impl std::io::Write,
    verbose: bool,
    stats: &TddStats,
) -> Result<(), String> {
    if verbose {
        writeln!(out, "tdd stats: {stats}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

pub(crate) fn load(path: &str) -> Result<Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    qasm::parse(&text).map_err(|e| format!("`{path}`: {e}"))
}

/// Executes a parsed command, writing to `out`. Returns the process exit
/// code.
pub fn run(command: Command, out: &mut impl std::io::Write) -> i32 {
    match run_inner(command, out) {
        Ok(code) => code,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            2
        }
    }
}

fn run_inner(command: Command, out: &mut impl std::io::Write) -> Result<i32, String> {
    let w =
        |out: &mut dyn std::io::Write, s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    match command {
        Command::Help => {
            w(out, USAGE.to_string())?;
            Ok(0)
        }
        Command::Info { file } => {
            let circuit = load(&file)?;
            w(out, format!("{circuit}"))?;
            w(
                out,
                format!(
                    "depth: {}   kraus terms (Alg I): {}",
                    circuit.depth(),
                    circuit.kraus_term_count()
                ),
            )?;
            w(out, circuit.draw())?;
            Ok(0)
        }
        Command::Fidelity {
            ideal,
            noisy,
            options,
        } => {
            let ideal = load(&ideal)?;
            let noisy = load(&noisy)?;
            let opts = options.to_check_options();
            let start = Instant::now();
            if let Some(samples) = options.mc_samples {
                let r = fidelity_monte_carlo(&ideal, &noisy, samples, options.mc_seed, &opts)
                    .map_err(|e| e.to_string())?;
                w(
                    out,
                    format!("F_J ≈ {:.9} ± {:.1e}", r.estimate, r.std_error),
                )?;
                w(
                    out,
                    format!(
                        "(monte carlo, {} samples, {} distinct strings, {:.3?})",
                        r.samples,
                        r.distinct_strings,
                        start.elapsed()
                    ),
                )?;
                write_stats(out, options.verbose, &r.stats)?;
                return Ok(0);
            }
            // Resolve `auto` up front so every branch carries statistics.
            // Fidelity is an exact query, so `auto` resolves to an exact
            // backend even where a check would try MPO first — the same
            // promise the session API keeps.
            let (resolved, auto_note) = match opts.algorithm {
                AlgorithmChoice::Auto => match qaec::auto_choice(&noisy) {
                    qaec::AlgorithmUsed::AlgorithmI => (AlgorithmChoice::AlgorithmI, "auto: "),
                    qaec::AlgorithmUsed::AlgorithmII | qaec::AlgorithmUsed::Mpo => {
                        (AlgorithmChoice::AlgorithmII, "auto: ")
                    }
                },
                choice => (choice, ""),
            };
            let (fidelity, detail, stats) = match resolved {
                AlgorithmChoice::AlgorithmI => {
                    let r =
                        fidelity_alg1(&ideal, &noisy, None, &opts).map_err(|e| e.to_string())?;
                    (
                        r.fidelity_lower,
                        format!(
                            "{auto_note}algorithm I, {} terms, {} nodes",
                            r.terms_computed, r.max_nodes
                        ),
                        r.stats,
                    )
                }
                AlgorithmChoice::Mpo => {
                    let mut compiled = Checker::new(&ideal, &noisy)
                        .options(opts.clone())
                        .compile()
                        .map_err(|e| e.to_string())?;
                    let estimate = compiled.fidelity().map_err(|e| e.to_string())?;
                    (
                        estimate,
                        "algorithm III (MPO), midpoint of certified interval".to_string(),
                        TddStats::default(),
                    )
                }
                _ => {
                    let r = fidelity_alg2(&ideal, &noisy, &opts).map_err(|e| e.to_string())?;
                    (
                        r.fidelity,
                        format!("{auto_note}algorithm II, {} nodes", r.max_nodes),
                        r.stats,
                    )
                }
            };
            w(out, format!("F_J = {fidelity:.12}"))?;
            w(out, format!("({detail}, {:.3?})", start.elapsed()))?;
            write_stats(out, options.verbose, &stats)?;
            Ok(0)
        }
        Command::Check {
            ideal,
            noisy,
            epsilon,
            options,
        } => {
            let ideal = load(&ideal)?;
            let noisy = load(&noisy)?;
            let opts = options.to_check_options();
            let report =
                check_equivalence(&ideal, &noisy, epsilon, &opts).map_err(|e| e.to_string())?;
            if options.json {
                w(out, check_json(&report).render())?;
            } else {
                w(out, format!("{report}"))?;
                write_stats(out, options.verbose, &report.stats)?;
            }
            Ok(match report.verdict {
                Verdict::Equivalent => 0,
                Verdict::NotEquivalent => 1,
                Verdict::Inconclusive => 3,
            })
        }
        Command::Sweep {
            ideal,
            noisy,
            epsilon,
            noise,
            epsilons,
            options,
        } => {
            let ideal = load(&ideal)?;
            let noisy = load(&noisy)?;
            let opts = options.to_check_options();
            let compile_start = Instant::now();
            let mut compiled = Checker::new(&ideal, &noisy)
                .options(opts)
                .compile()
                .map_err(|e| e.to_string())?;
            let compile_ms = compile_start.elapsed().as_secs_f64() * 1e3;
            let algorithm = compiled.algorithm();

            if let Some(strengths) = noise {
                // Noise sweep: one row per strength, same compiled plan.
                let eps = epsilon.expect("parser enforced --epsilon");
                let points = compiled
                    .sweep_noise(eps, &strengths)
                    .map_err(|e| e.to_string())?;
                if options.json {
                    let rows: Vec<json::Object> = strengths
                        .iter()
                        .zip(&points)
                        .map(|(&p, point)| noise_point_json(p, point))
                        .collect();
                    w(out, json::array(&rows).trim_end().to_string())?;
                } else {
                    for (p, point) in strengths.iter().zip(&points) {
                        w(
                            out,
                            format!(
                                "p={p:<8} F_J = {:.12}  {} ({} nodes, {:.3?})",
                                point.fidelity, point.verdict, point.max_nodes, point.elapsed
                            ),
                        )?;
                        write_stats(out, options.verbose, &point.stats)?;
                    }
                    w(
                        out,
                        format!(
                            "({} points via {algorithm}, ε = {eps}, compiled once in {compile_ms:.1}ms)",
                            points.len()
                        ),
                    )?;
                }
            } else {
                // ε sweep at the file's noise level.
                let thresholds = epsilons.expect("parser enforced --epsilons");
                let points = compiled
                    .sweep_epsilon(&thresholds)
                    .map_err(|e| e.to_string())?;
                if options.json {
                    let rows: Vec<json::Object> = points.iter().map(epsilon_point_json).collect();
                    w(out, json::array(&rows).trim_end().to_string())?;
                } else {
                    for point in &points {
                        w(
                            out,
                            format!(
                                "ε={:<10} F_J ∈ [{:.9}, {:.9}]  {}",
                                point.epsilon,
                                point.fidelity_bounds.0,
                                point.fidelity_bounds.1,
                                point.verdict
                            ),
                        )?;
                    }
                    w(
                        out,
                        format!(
                            "({} thresholds via {algorithm}, compiled once in {compile_ms:.1}ms)",
                            points.len()
                        ),
                    )?;
                }
            }
            Ok(0)
        }
        Command::Serve { args } => serve::run_serve(&args, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strings(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_info() {
        assert_eq!(
            parse_args(&strings(&["info", "a.qasm"])).unwrap(),
            Command::Info {
                file: "a.qasm".into()
            }
        );
        assert!(parse_args(&strings(&["info"])).is_err());
    }

    #[test]
    fn parse_fidelity_with_options() {
        let cmd = parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--algorithm",
            "2",
            "--strategy",
            "greedy",
            "--threads",
            "4",
            "--optimize",
        ]))
        .unwrap();
        match cmd {
            Command::Fidelity { options, .. } => {
                assert_eq!(options.algorithm, AlgorithmChoice::AlgorithmII);
                assert_eq!(options.strategy, Strategy::GreedySize);
                assert_eq!(options.threads, 4);
                assert!(options.optimize);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_mpo_algorithm_and_knobs() {
        // `mpo` and its aliases select Algorithm III; the knobs parse in
        // both flag styles and default to the core options.
        let defaults = CliOptions::default();
        assert_eq!(
            defaults.svd_threshold,
            CheckOptions::default().svd_threshold
        );
        assert_eq!(defaults.max_bond, CheckOptions::default().max_bond);
        for alias in ["mpo", "3", "III", "iii"] {
            match parse_args(&strings(&[
                "check",
                "i.qasm",
                "n.qasm",
                "--epsilon",
                "0.01",
                "--algorithm",
                alias,
            ]))
            .unwrap()
            {
                Command::Check { options, .. } => {
                    assert_eq!(options.algorithm, AlgorithmChoice::Mpo, "{alias}")
                }
                other => panic!("wrong command {other:?}"),
            }
        }
        match parse_args(&strings(&[
            "check",
            "i.qasm",
            "n.qasm",
            "--epsilon=0.01",
            "--algorithm=mpo",
            "--svd-threshold=1e-6",
            "--max-bond",
            "32",
        ]))
        .unwrap()
        {
            Command::Check { options, .. } => {
                assert_eq!(options.algorithm, AlgorithmChoice::Mpo);
                assert_eq!(options.svd_threshold, 1e-6);
                assert_eq!(options.max_bond, 32);
                let core = options.to_check_options();
                assert_eq!(core.svd_threshold, 1e-6);
                assert_eq!(core.max_bond, 32);
            }
            other => panic!("wrong command {other:?}"),
        }
        for bad in [
            vec!["--svd-threshold", "-1"],
            vec!["--svd-threshold", "nope"],
            vec!["--max-bond", "0"],
            vec!["--max-bond", "many"],
        ] {
            let mut full = vec!["check", "i.qasm", "n.qasm", "--epsilon", "0.01"];
            full.extend(bad.iter());
            assert!(parse_args(&strings(&full)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_store_reclaim_modes_in_both_flag_styles() {
        for (args, expected) in [
            (vec!["--store-reclaim", "on"], StoreReclaimMode::On),
            (vec!["--store-reclaim=off"], StoreReclaimMode::Off),
            (vec!["--store-reclaim=auto"], StoreReclaimMode::Auto),
        ] {
            let mut full = vec!["fidelity", "i.qasm", "n.qasm"];
            full.extend(args);
            match parse_args(&strings(&full)).unwrap() {
                Command::Fidelity { options, .. } => {
                    assert_eq!(options.store_reclaim, expected, "{full:?}")
                }
                other => panic!("wrong command {other:?}"),
            }
        }
        assert!(parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--store-reclaim",
            "sometimes"
        ]))
        .is_err());
    }

    #[test]
    fn parse_shared_table_modes_in_both_flag_styles() {
        for (args, expected) in [
            (vec!["--shared-table", "on"], SharedTableMode::On),
            (vec!["--shared-table=off"], SharedTableMode::Off),
            (vec!["--shared-table=auto"], SharedTableMode::Auto),
        ] {
            let mut full = vec!["fidelity", "i.qasm", "n.qasm"];
            full.extend(args);
            match parse_args(&strings(&full)).unwrap() {
                Command::Fidelity { options, .. } => {
                    assert_eq!(options.shared_table, expected, "{full:?}")
                }
                other => panic!("wrong command {other:?}"),
            }
        }
        assert!(parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--shared-table",
            "sometimes"
        ]))
        .is_err());
        // Boolean flags reject inline values instead of silently
        // enabling themselves.
        for bad in ["--seed-cache=false", "--verbose=0", "--optimize=off"] {
            assert!(
                parse_args(&strings(&["fidelity", "i.qasm", "n.qasm", bad])).is_err(),
                "{bad} must be rejected"
            );
        }
        match parse_args(&strings(&[
            "check",
            "i.qasm",
            "n.qasm",
            "--epsilon=0.25",
            "--seed-cache=off",
        ]))
        .unwrap()
        {
            Command::Check {
                epsilon, options, ..
            } => {
                assert!((epsilon - 0.25).abs() < 1e-12, "inline --epsilon=v works");
                assert!(!options.seed_cache, "--seed-cache=off is the escape hatch");
            }
            other => panic!("wrong command {other:?}"),
        }
        // Seeding defaults on; both flag styles parse; garbage rejected.
        assert!(CliOptions::default().seed_cache);
        match parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--seed-cache",
            "on",
        ]))
        .unwrap()
        {
            Command::Fidelity { options, .. } => assert!(options.seed_cache),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--seed-cache",
            "maybe"
        ]))
        .is_err());
    }

    #[test]
    fn parse_sweep_modes_and_rejections() {
        // Noise sweep: --noise + --epsilon.
        match parse_args(&strings(&[
            "sweep",
            "i.qasm",
            "n.qasm",
            "--epsilon",
            "0.01",
            "--noise",
            "0.999,0.99,0.9",
        ]))
        .unwrap()
        {
            Command::Sweep {
                epsilon,
                noise,
                epsilons,
                ..
            } => {
                assert_eq!(epsilon, Some(0.01));
                assert_eq!(noise, Some(vec![0.999, 0.99, 0.9]));
                assert_eq!(epsilons, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // ε sweep: --epsilons alone.
        match parse_args(&strings(&[
            "sweep",
            "i.qasm",
            "n.qasm",
            "--epsilons=0.1,0.01",
            "--json",
        ]))
        .unwrap()
        {
            Command::Sweep {
                epsilons, options, ..
            } => {
                assert_eq!(epsilons, Some(vec![0.1, 0.01]));
                assert!(options.json);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Invalid combinations are usage errors.
        assert!(parse_args(&strings(&["sweep", "i", "n"])).is_err());
        assert!(parse_args(&strings(&["sweep", "i", "n", "--noise", "0.9"])).is_err());
        assert!(parse_args(&strings(&[
            "sweep",
            "i",
            "n",
            "--epsilon",
            "0.1",
            "--noise",
            "0.9",
            "--epsilons",
            "0.1",
        ]))
        .is_err());
        assert!(parse_args(&strings(&[
            "sweep",
            "i",
            "n",
            "--epsilon",
            "0.1",
            "--noise",
            "0.9,oops",
        ]))
        .is_err());
        // --json is a boolean flag on check too.
        match parse_args(&strings(&["check", "i", "n", "--epsilon", "0.1", "--json"])).unwrap() {
            Command::Check { options, .. } => assert!(options.json),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&strings(&[
            "check",
            "i",
            "n",
            "--epsilon",
            "0.1",
            "--json=yes"
        ]))
        .is_err());
    }

    #[test]
    fn sweep_and_json_end_to_end() {
        let dir = std::env::temp_dir().join("qaec_cli_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ideal_path = dir.join("ideal.qasm");
        let noisy_path = dir.join("noisy.qasm");
        std::fs::write(
            &ideal_path,
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        std::fs::write(
            &noisy_path,
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n// qaec.noise: depolarizing(0.999) q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        let ideal = ideal_path.to_str().unwrap();
        let noisy = noisy_path.to_str().unwrap();

        // Noise sweep, text mode: one row per point plus a footer.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "sweep",
                ideal,
                noisy,
                "--epsilon",
                "0.01",
                "--noise",
                "0.999,0.99,0.9",
            ]))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.matches("F_J = ").count(), 3, "{text}");
        assert!(text.contains("compiled once"), "{text}");

        // Noise sweep, JSON: an array of flat objects, monotone fidelity.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "sweep",
                ideal,
                noisy,
                "--epsilon",
                "0.01",
                "--noise",
                "0.999,0.9",
                "--json",
            ]))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.trim_start().starts_with('['), "{text}");
        assert_eq!(text.matches("\"noise\":").count(), 2, "{text}");
        assert_eq!(text.matches("\"verdict\":").count(), 2, "{text}");

        // ε sweep, JSON.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "sweep",
                ideal,
                noisy,
                "--epsilons",
                "0.2,0.01,0.0001",
                "--json",
            ]))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert_eq!(text.matches("\"epsilon\":").count(), 3, "{text}");

        // check --json: one flat object, exit code still verdict-driven.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "check",
                ideal,
                noisy,
                "--epsilon",
                "0.01",
                "--json",
            ]))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.trim_start().starts_with('{'), "{text}");
        for key in [
            "\"verdict\":",
            "\"fidelity_lower\":",
            "\"algorithm\":",
            "\"max_nodes\":",
            "\"wall_ms\":",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }

        // A sweep over an unsupported (multi-parameter) channel is a
        // runtime error, exit code 2.
        let pauli_path = dir.join("pauli.qasm");
        std::fs::write(
            &pauli_path,
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n// qaec.noise: pauli(0.9,0.05,0.03,0.02) q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "sweep",
                ideal,
                pauli_path.to_str().unwrap(),
                "--epsilon",
                "0.01",
                "--noise",
                "0.9",
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 2, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("noise sweep unsupported"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_check_requires_epsilon() {
        assert!(parse_args(&strings(&["check", "i.qasm", "n.qasm"])).is_err());
        let cmd = parse_args(&strings(&[
            "check",
            "i.qasm",
            "n.qasm",
            "--epsilon",
            "0.01",
        ]))
        .unwrap();
        match cmd {
            Command::Check { epsilon, .. } => assert!((epsilon - 0.01).abs() < 1e-12),
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_args(&strings(&["frobnicate"])).is_err());
        assert!(parse_args(&strings(&["check", "a", "b", "--epsilon", "x"])).is_err());
        assert!(parse_args(&strings(&["fidelity", "a", "b", "--bogus"])).is_err());
        assert!(parse_args(&strings(&["fidelity", "a", "b", "--algorithm", "7"])).is_err());
    }

    #[test]
    fn end_to_end_check_on_temp_files() {
        let dir = std::env::temp_dir().join("qaec_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ideal_path = dir.join("ideal.qasm");
        let noisy_path = dir.join("noisy.qasm");
        std::fs::write(
            &ideal_path,
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();
        std::fs::write(
            &noisy_path,
            "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n// qaec.noise: depolarizing(0.999) q[0];\ncx q[0], q[1];\n",
        )
        .unwrap();

        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "check",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
                "--epsilon",
                "0.01",
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("equivalent"));

        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "check",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
                "--epsilon",
                "0.0001",
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 1, "{}", String::from_utf8_lossy(&out));

        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&["info", noisy_path.to_str().unwrap()])).unwrap(),
            &mut out,
        );
        assert_eq!(code, 0);
        let text = String::from_utf8_lossy(&out);
        assert!(text.contains("noise site"));

        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "fidelity",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0);
        assert!(String::from_utf8_lossy(&out).contains("F_J ="));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_and_run_monte_carlo() {
        let cmd = parse_args(&strings(&[
            "fidelity",
            "i.qasm",
            "n.qasm",
            "--algorithm",
            "mc",
            "--samples",
            "300",
            "--seed",
            "7",
        ]))
        .unwrap();
        match &cmd {
            Command::Fidelity { options, .. } => {
                assert_eq!(options.mc_samples, Some(300));
                assert_eq!(options.mc_seed, 7);
            }
            other => panic!("wrong command {other:?}"),
        }

        let dir = std::env::temp_dir().join("qaec_cli_mc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ideal_path = dir.join("ideal.qasm");
        let noisy_path = dir.join("noisy.qasm");
        std::fs::write(&ideal_path, "qreg q[1];\nh q[0];\n").unwrap();
        std::fs::write(
            &noisy_path,
            "qreg q[1];\nh q[0];\n// qaec.noise: bit_flip(0.9) q[0];\n",
        )
        .unwrap();
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "fidelity",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
                "--algorithm",
                "mc",
                "--samples",
                "500",
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0, "{}", String::from_utf8_lossy(&out));
        assert!(String::from_utf8_lossy(&out).contains("monte carlo"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verbose_prints_tdd_stats() {
        let dir = std::env::temp_dir().join("qaec_cli_verbose_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ideal_path = dir.join("ideal.qasm");
        let noisy_path = dir.join("noisy.qasm");
        std::fs::write(&ideal_path, "qreg q[1];\nh q[0];\n").unwrap();
        std::fs::write(
            &noisy_path,
            "qreg q[1];\nh q[0];\n// qaec.noise: bit_flip(0.99) q[0];\n",
        )
        .unwrap();

        // `check` with --threads 2 --verbose: ε run through the parallel
        // engine, stats line present.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "check",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
                "--epsilon",
                "0.05",
                "--threads",
                "2",
                "--verbose",
            ]))
            .unwrap(),
            &mut out,
        );
        let text = String::from_utf8_lossy(&out);
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("tdd stats:"), "{text}");
        assert!(text.contains("nodes created"), "{text}");

        // Without --verbose the stats line is absent.
        let mut out = Vec::new();
        let code = run(
            parse_args(&strings(&[
                "fidelity",
                ideal_path.to_str().unwrap(),
                noisy_path.to_str().unwrap(),
            ]))
            .unwrap(),
            &mut out,
        );
        assert_eq!(code, 0);
        assert!(!String::from_utf8_lossy(&out).contains("tdd stats:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_runtime_error() {
        let mut out = Vec::new();
        let code = run(
            Command::Info {
                file: "/nonexistent/file.qasm".into(),
            },
            &mut out,
        );
        assert_eq!(code, 2);
        assert!(String::from_utf8_lossy(&out).contains("error"));
    }
}
