//! The `qaec` binary. See [`qaec_cli::USAGE`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    let code = match qaec_cli::parse_args(&args) {
        Ok(command) => qaec_cli::run(command, &mut stdout),
        Err(message) => {
            eprintln!("error: {message}\n\n{}", qaec_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
