//! The `qaec serve` subcommand: a long-running batch query layer over
//! [`qaec::Service`].
//!
//! Requests are line-delimited JSON objects
//! (`{"v": 1, "id": 7, "op": "check", ...}`), answered one JSON line
//! per request — the normative wire format lives in `docs/PROTOCOL.md`.
//! Three transports share the same request/response shapes:
//!
//! * **stdin (default)** — the whole stream is read, requests landing
//!   on the same circuit pair are grouped onto one cached session and
//!   distinct pairs run concurrently ([`qaec::Service::handle_batch`]);
//!   responses come back in input order, a stats footer goes to stderr;
//! * **`--listen host:port`** — a TCP listener, one thread per
//!   connection, each connection a request/response stream (answered
//!   line by line, so a client can keep the connection open);
//! * **`--unix path`** — the same, on a unix-domain socket.
//!
//! Malformed lines are answered with a structured
//! `{"ok": false, "error": ...}` object — a bad request never takes the
//! service down. The embedded result payloads are built by the same
//! row constructors as `check --json` / `sweep --json`, so the fields
//! mean exactly the same thing in one-shot and serving mode.
//!
//! The JSON reader below is deliberately minimal (objects, arrays,
//! strings with escapes, numbers, booleans, null — no nested depth
//! limit games, no comments): enough for the protocol, no serde
//! dependency, mirroring the hand-rolled writer in `qaec_bench::json`.

use crate::{check_json, epsilon_point_json, load, noise_point_json, CliOptions};
use qaec::{
    AlgorithmChoice, Service, ServiceConfig, ServiceQuery, ServiceReply, ServiceRequest,
    ServiceResponse, ServiceStats, SharedTableMode, StoreReclaimMode,
};
use qaec_bench::json;
use qaec_circuit::qasm;
use qaec_tensornet::Strategy;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// Parsed `qaec serve` arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeArgs {
    /// Checker options every cached session is compiled with;
    /// `threads` doubles as the stdin batch's concurrency.
    pub options: CliOptions,
    /// Warm-store byte budget for the session cache (`--cache-bytes`,
    /// `k`/`m`/`g` suffixes); `None` caches without bound.
    pub cache_bytes: Option<usize>,
    /// Serve on a TCP socket instead of stdin (`--listen host:port`).
    pub listen: Option<String>,
    /// Serve on a unix-domain socket instead of stdin (`--unix path`).
    pub unix: Option<String>,
}

/// Parses a byte count with optional binary `k`/`m`/`g` suffix
/// (`"512"`, `"64k"`, `"256m"`, `"2g"`).
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn parse_byte_size(text: &str) -> Result<usize, String> {
    let trimmed = text.trim();
    let (digits, shift) = match trimmed.char_indices().last() {
        Some((i, 'k') | (i, 'K')) => (&trimmed[..i], 10),
        Some((i, 'm') | (i, 'M')) => (&trimmed[..i], 20),
        Some((i, 'g') | (i, 'G')) => (&trimmed[..i], 30),
        _ => (trimmed, 0),
    };
    let base = digits
        .parse::<usize>()
        .map_err(|_| format!("bad byte size `{text}` (expected e.g. 512, 64k, 256m, 2g)"))?;
    base.checked_mul(1usize << shift)
        .ok_or_else(|| format!("byte size `{text}` overflows"))
}

/// Parses the arguments after `qaec serve`. Accepts the shared checker
/// options (minus `--timeout`, `--samples`/`--seed` and `--json`, which
/// have no serving meaning) plus the serve-specific
/// `--cache-bytes`/`--listen`/`--unix`.
///
/// # Errors
///
/// A human-readable message on malformed input.
pub fn parse_serve_args(rest: &[String]) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        options: CliOptions::default(),
        cache_bytes: None,
        listen: None,
        unix: None,
    };
    let mut k = 0;
    while k < rest.len() {
        let raw = rest[k].as_str();
        let (flag, inline) = match raw.split_once('=') {
            Some((f, v)) => (f, Some(v)),
            None => (raw, None),
        };
        let value = |k: &mut usize| -> Result<&str, String> {
            if let Some(v) = inline {
                return Ok(v);
            }
            *k += 1;
            rest.get(*k)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag {
            "--cache-bytes" => args.cache_bytes = Some(parse_byte_size(value(&mut k)?)?),
            "--listen" => args.listen = Some(value(&mut k)?.to_string()),
            "--unix" => args.unix = Some(value(&mut k)?.to_string()),
            "--algorithm" => {
                args.options.algorithm = match value(&mut k)? {
                    "auto" => AlgorithmChoice::Auto,
                    "1" | "I" | "i" => AlgorithmChoice::AlgorithmI,
                    "2" | "II" | "ii" => AlgorithmChoice::AlgorithmII,
                    "mpo" | "3" | "III" | "iii" => AlgorithmChoice::Mpo,
                    other => return Err(format!("serve: unknown algorithm `{other}`")),
                };
            }
            "--svd-threshold" => {
                args.options.svd_threshold = value(&mut k)?
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| "bad --svd-threshold value".to_string())?;
            }
            "--max-bond" => {
                args.options.max_bond = value(&mut k)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "bad --max-bond value".to_string())?;
            }
            "--strategy" => {
                args.options.strategy = match value(&mut k)? {
                    "sequential" => Strategy::Sequential,
                    "greedy" => Strategy::GreedySize,
                    "min-degree" => Strategy::MinDegree,
                    "min-fill" => Strategy::MinFill,
                    other => return Err(format!("serve: unknown strategy `{other}`")),
                };
            }
            "--threads" => {
                args.options.threads = value(&mut k)?
                    .parse::<usize>()
                    .map_err(|_| "bad --threads value".to_string())?;
            }
            "--lanes" => {
                args.options.sweep_lanes = value(&mut k)?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "bad --lanes value".to_string())?;
            }
            "--shared-table" => {
                args.options.shared_table = match value(&mut k)? {
                    "on" => SharedTableMode::On,
                    "off" => SharedTableMode::Off,
                    "auto" => SharedTableMode::Auto,
                    other => return Err(format!("serve: unknown shared-table mode `{other}`")),
                };
            }
            "--store-reclaim" => {
                args.options.store_reclaim = match value(&mut k)? {
                    "on" => StoreReclaimMode::On,
                    "off" => StoreReclaimMode::Off,
                    "auto" => StoreReclaimMode::Auto,
                    other => return Err(format!("serve: unknown store-reclaim mode `{other}`")),
                };
            }
            "--seed-cache" => {
                args.options.seed_cache = match value(&mut k)? {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("serve: unknown seed-cache mode `{other}`")),
                };
            }
            "--optimize" => match inline {
                None => args.options.optimize = true,
                Some(v) => return Err(format!("--optimize takes no value (got `{v}`)")),
            },
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
        k += 1;
    }
    if args.listen.is_some() && args.unix.is_some() {
        return Err("serve: --listen and --unix are exclusive".to_string());
    }
    Ok(args)
}

// ---------------------------------------------------------------------
// Minimal JSON reader.
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough structure for the request shapes.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object (first occurrence).
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Reader<'a> {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` in object, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` in array, found {:?} at byte {}",
                        other.map(|b| b as char),
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "bad \\u code point".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parses one complete JSON value with nothing but whitespace after it.
fn parse_json(text: &str) -> Result<Json, String> {
    let mut reader = Reader::new(text);
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(format!("trailing garbage at byte {}", reader.pos));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Request extraction.
// ---------------------------------------------------------------------

/// A decoded request line: the echo fields plus what to run.
struct Parsed {
    /// The request's `id`, re-rendered for the response echo.
    id: Option<String>,
    /// The `op` string (already validated).
    op: &'static str,
    /// The service request; `None` for `op: "stats"`.
    request: Option<ServiceRequest>,
}

/// A request that could not be decoded — still answered, with whatever
/// echo fields were recovered before the failure.
struct BadRequest {
    id: Option<String>,
    op: Option<String>,
    message: String,
}

/// Renders a scalar `id` back out (numbers as numbers, strings
/// sanitised like every other string field).
fn render_id(value: &Json) -> Option<String> {
    match value {
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(format!("{}", *n as i64)),
        Json::Num(n) => Some(format!("{n}")),
        Json::Str(s) => Some(format!("\"{}\"", json::sanitize(s))),
        _ => None,
    }
}

fn number_field(value: &Json, key: &str) -> Result<f64, String> {
    match value.get(key) {
        Some(Json::Num(n)) => Ok(*n),
        Some(_) => Err(format!("`{key}` must be a number")),
        None => Err(format!("missing `{key}`")),
    }
}

fn number_array_field(value: &Json, key: &str) -> Result<Vec<f64>, String> {
    match value.get(key) {
        Some(Json::Arr(items)) if !items.is_empty() => items
            .iter()
            .map(|item| match item {
                Json::Num(n) => Ok(*n),
                _ => Err(format!("`{key}` must be an array of numbers")),
            })
            .collect(),
        Some(Json::Arr(_)) => Err(format!("`{key}` must not be empty")),
        Some(_) => Err(format!("`{key}` must be an array of numbers")),
        None => Err(format!("missing `{key}`")),
    }
}

/// Loads one of the request's two circuits: inline QASM text under
/// `key`, or a server-side path under `<key>_file` — exactly one.
fn circuit_field(value: &Json, key: &str) -> Result<qaec_circuit::Circuit, String> {
    let file_key = format!("{key}_file");
    match (value.get(key), value.get(&file_key)) {
        (Some(_), Some(_)) => Err(format!("`{key}` and `{file_key}` are exclusive")),
        (Some(Json::Str(text)), None) => qasm::parse(text).map_err(|e| format!("`{key}`: {e}")),
        (Some(_), None) => Err(format!("`{key}` must be a QASM string")),
        (None, Some(Json::Str(path))) => load(path),
        (None, Some(_)) => Err(format!("`{file_key}` must be a path string")),
        (None, None) => Err(format!("missing `{key}` (or `{file_key}`)")),
    }
}

/// Decodes one request line. Unknown fields are ignored (the protocol's
/// forward-compatibility rule); a missing `v` means version 1.
fn parse_request(line: &str) -> Result<Parsed, BadRequest> {
    let fail = |id: &Option<String>, op: Option<String>, message: String| BadRequest {
        id: id.clone(),
        op,
        message,
    };
    let value = parse_json(line).map_err(|e| fail(&None, None, format!("bad JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err(fail(&None, None, "request must be a JSON object".into()));
    }
    let id = value.get("id").and_then(render_id);
    // A missing `v` means version 1; anything but 1 is rejected.
    if let Some(v) = value.get("v") {
        if *v != Json::Num(1.0) {
            return Err(fail(
                &id,
                None,
                format!("unsupported protocol version {v:?} (this server speaks v 1)"),
            ));
        }
    }
    let op_name = match value.get("op") {
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(fail(&id, None, "`op` must be a string".into())),
        None => return Err(fail(&id, None, "missing `op`".into())),
    };
    if op_name == "stats" {
        return Ok(Parsed {
            id,
            op: "stats",
            request: None,
        });
    }
    let (op, query) = match op_name.as_str() {
        "check" => {
            let epsilon =
                number_field(&value, "epsilon").map_err(|e| fail(&id, Some(op_name.clone()), e))?;
            ("check", ServiceQuery::Check { epsilon })
        }
        "sweep_epsilon" => {
            let epsilons = number_array_field(&value, "epsilons")
                .map_err(|e| fail(&id, Some(op_name.clone()), e))?;
            ("sweep_epsilon", ServiceQuery::SweepEpsilon { epsilons })
        }
        "sweep_noise" => {
            let epsilon =
                number_field(&value, "epsilon").map_err(|e| fail(&id, Some(op_name.clone()), e))?;
            let strengths = number_array_field(&value, "noise")
                .map_err(|e| fail(&id, Some(op_name.clone()), e))?;
            (
                "sweep_noise",
                ServiceQuery::SweepNoise { epsilon, strengths },
            )
        }
        other => {
            return Err(fail(
                &id,
                None,
                format!("unknown op `{other}` (check | sweep_epsilon | sweep_noise | stats)"),
            ))
        }
    };
    let ideal = circuit_field(&value, "ideal").map_err(|e| fail(&id, Some(op_name.clone()), e))?;
    let noisy = circuit_field(&value, "noisy").map_err(|e| fail(&id, Some(op_name.clone()), e))?;
    // Optional per-request algorithm override (v1-additive; absent means
    // the server's configured options decide).
    let algorithm = match value.get("algorithm") {
        None => None,
        Some(Json::Str(name)) => Some(match name.as_str() {
            "auto" => AlgorithmChoice::Auto,
            "1" => AlgorithmChoice::AlgorithmI,
            "2" => AlgorithmChoice::AlgorithmII,
            "mpo" => AlgorithmChoice::Mpo,
            other => {
                return Err(fail(
                    &id,
                    Some(op_name.clone()),
                    format!("unknown algorithm `{other}` (auto | 1 | 2 | mpo)"),
                ))
            }
        }),
        Some(_) => {
            return Err(fail(
                &id,
                Some(op_name.clone()),
                "`algorithm` must be a string".into(),
            ))
        }
    };
    Ok(Parsed {
        id,
        op,
        request: Some(ServiceRequest {
            ideal,
            noisy,
            query,
            algorithm,
        }),
    })
}

// ---------------------------------------------------------------------
// Response rendering.
// ---------------------------------------------------------------------

/// The common response prefix: `v`, the echoed `id`/`op`, and `ok`.
fn envelope(id: &Option<String>, op: Option<&str>, ok: bool) -> json::Object {
    let mut object = json::Object::new().int("v", 1);
    if let Some(id) = id {
        object = object.raw("id", id.clone());
    }
    if let Some(op) = op {
        object = object.string("op", op);
    }
    object.boolean("ok", ok)
}

/// Renders an error line (`{"v": 1, ..., "ok": false, "error": ...}`).
fn render_error(id: &Option<String>, op: Option<&str>, message: &str) -> String {
    envelope(id, op, false).string("error", message).render()
}

/// Renders the response to a decoded circuit request.
fn render_response(parsed: &Parsed, response: &ServiceResponse) -> String {
    let base = || {
        envelope(&parsed.id, Some(parsed.op), true)
            .string("key", &format!("{:016x}", response.key))
            .string("cache", response.cache.as_str())
    };
    match &response.result {
        Err(error) => render_error(&parsed.id, Some(parsed.op), &error.to_string()),
        Ok(ServiceReply::Check(report)) => base().extend(check_json(report)).render(),
        Ok(ServiceReply::SweepEpsilon(points)) => {
            let rows: Vec<json::Object> = points.iter().map(epsilon_point_json).collect();
            base().raw("points", json::array_inline(&rows)).render()
        }
        Ok(ServiceReply::SweepNoise(points)) => {
            let strengths = match parsed.request.as_ref().map(|r| &r.query) {
                Some(ServiceQuery::SweepNoise { strengths, .. }) => strengths.as_slice(),
                _ => &[],
            };
            let rows: Vec<json::Object> = strengths
                .iter()
                .zip(points)
                .map(|(&p, point)| noise_point_json(p, point))
                .collect();
            base().raw("points", json::array_inline(&rows)).render()
        }
    }
}

/// Renders the `op: "stats"` response from the service counters.
fn render_stats(id: &Option<String>, stats: &ServiceStats) -> String {
    envelope(id, Some("stats"), true)
        .int("hits", stats.hits)
        .int("misses", stats.misses)
        .int("compiles", stats.compiles)
        .int("evictions", stats.evictions)
        .int("sessions", stats.sessions as u64)
        .int("store_bytes", stats.store_bytes)
        .int("peak_store_bytes", stats.peak_store_bytes)
        .render()
}

// ---------------------------------------------------------------------
// Serving loops.
// ---------------------------------------------------------------------

/// Serves a complete request stream in batch mode (the stdin
/// transport): every line is decoded, runs of circuit requests between
/// `stats` barriers go through [`qaec::Service::handle_batch`] (repeats
/// hit the session cache, distinct pairs run concurrently on
/// `options.threads` workers), and responses are written in input
/// order — error lines for the requests that failed to decode.
///
/// # Errors
///
/// Only I/O failures on `input`/`out`; request-level problems are
/// answered in-band.
pub fn serve_batch(
    service: &Service,
    input: impl BufRead,
    out: &mut impl Write,
) -> Result<(), String> {
    enum Item {
        Bad(BadRequest),
        Stats(Parsed),
        Request(Parsed),
    }
    let mut items: Vec<Item> = Vec::new();
    for line in input.lines() {
        let line = line.map_err(|e| format!("reading requests: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        items.push(match parse_request(&line) {
            Err(bad) => Item::Bad(bad),
            Ok(parsed) if parsed.request.is_none() => Item::Stats(parsed),
            Ok(parsed) => Item::Request(parsed),
        });
    }

    let mut lines: Vec<Option<String>> = items.iter().map(|_| None).collect();
    // `stats` is a barrier: it reports the counters after every request
    // before it in the stream, so flush the accumulated batch first.
    let mut pending: Vec<usize> = Vec::new();
    let flush = |pending: &mut Vec<usize>, lines: &mut Vec<Option<String>>| {
        if pending.is_empty() {
            return;
        }
        let requests: Vec<ServiceRequest> = pending
            .iter()
            .map(|&index| match &items[index] {
                Item::Request(parsed) => parsed.request.clone().expect("request items carry one"),
                _ => unreachable!("only requests are pending"),
            })
            .collect();
        let responses = service.handle_batch(&requests);
        for (&index, response) in pending.iter().zip(&responses) {
            let Item::Request(parsed) = &items[index] else {
                unreachable!("only requests are pending")
            };
            lines[index] = Some(render_response(parsed, response));
        }
        pending.clear();
    };
    for index in 0..items.len() {
        match &items[index] {
            Item::Bad(bad) => {
                lines[index] = Some(render_error(&bad.id, bad.op.as_deref(), &bad.message));
            }
            Item::Request(_) => pending.push(index),
            Item::Stats(parsed) => {
                flush(&mut pending, &mut lines);
                lines[index] = Some(render_stats(&parsed.id, &service.stats()));
            }
        }
    }
    flush(&mut pending, &mut lines);
    for line in lines {
        writeln!(out, "{}", line.expect("every item answered")).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Serves one open connection line by line: each request is answered
/// (and flushed) before the next is read, so interactive clients see
/// responses immediately.
fn serve_connection(service: &Service, input: impl BufRead, mut out: impl Write) {
    for line in input.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let rendered = match parse_request(&line) {
            Err(bad) => render_error(&bad.id, bad.op.as_deref(), &bad.message),
            Ok(parsed) => match &parsed.request {
                None => render_stats(&parsed.id, &service.stats()),
                Some(request) => render_response(&parsed, &service.handle(request)),
            },
        };
        if writeln!(out, "{rendered}")
            .and_then(|()| out.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Accept loop for the TCP transport: one thread per connection, all
/// connections sharing one [`Service`] (and therefore one session
/// cache). `max_connections` bounds the loop for tests; pass `None` to
/// serve forever.
///
/// # Errors
///
/// Propagates listener accept failures.
pub fn serve_tcp(
    service: Arc<Service>,
    listener: TcpListener,
    max_connections: Option<usize>,
) -> Result<(), String> {
    for (accepted, stream) in listener.incoming().enumerate() {
        let stream = stream.map_err(|e| format!("accept: {e}"))?;
        let service = Arc::clone(&service);
        let reader = stream.try_clone().map_err(|e| format!("connection: {e}"))?;
        std::thread::spawn(move || {
            serve_connection(&service, BufReader::new(reader), stream);
        });
        if max_connections.is_some_and(|max| accepted + 1 >= max) {
            return Ok(());
        }
    }
    Ok(())
}

/// Accept loop for the unix-socket transport — same per-connection
/// behaviour as [`serve_tcp`].
///
/// # Errors
///
/// Propagates listener accept failures.
#[cfg(unix)]
pub fn serve_unix(
    service: Arc<Service>,
    listener: std::os::unix::net::UnixListener,
    max_connections: Option<usize>,
) -> Result<(), String> {
    for (accepted, stream) in listener.incoming().enumerate() {
        let stream = stream.map_err(|e| format!("accept: {e}"))?;
        let service = Arc::clone(&service);
        let reader = stream.try_clone().map_err(|e| format!("connection: {e}"))?;
        std::thread::spawn(move || {
            serve_connection(&service, BufReader::new(reader), stream);
        });
        if max_connections.is_some_and(|max| accepted + 1 >= max) {
            return Ok(());
        }
    }
    Ok(())
}

/// Runs the `serve` subcommand: builds the [`Service`] from the parsed
/// arguments and enters the selected transport's loop. The stdin
/// transport returns once the stream is exhausted (stats footer on
/// stderr); the socket transports serve until killed.
///
/// # Errors
///
/// Transport setup and I/O failures (a bad *request* is answered
/// in-band, never an error here).
pub fn run_serve(args: &ServeArgs, out: &mut impl Write) -> Result<i32, String> {
    let service = Service::new(ServiceConfig {
        options: args.options.to_check_options(),
        cache_bytes: args.cache_bytes,
    });
    if let Some(addr) = &args.listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("serve: cannot listen on {addr}: {e}"))?;
        eprintln!(
            "qaec serve: listening on {}",
            listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| addr.clone())
        );
        serve_tcp(Arc::new(service), listener, None)?;
        return Ok(0);
    }
    #[cfg(unix)]
    if let Some(path) = &args.unix {
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("serve: cannot listen on {path}: {e}"))?;
        eprintln!("qaec serve: listening on {path}");
        serve_unix(Arc::new(service), listener, None)?;
        return Ok(0);
    }
    #[cfg(not(unix))]
    if args.unix.is_some() {
        return Err("serve: --unix is not supported on this platform".to_string());
    }
    let stdin = std::io::stdin();
    serve_batch(&service, stdin.lock(), out)?;
    eprintln!("qaec serve: {}", service.stats());
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    const IDEAL: &str = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0], q[1];\\n";
    const NOISY: &str = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\n\
                         // qaec.noise: depolarizing(0.999) q[0];\\ncx q[0], q[1];\\n";

    fn service() -> Service {
        Service::new(ServiceConfig::default())
    }

    fn batch(service: &Service, input: &str) -> Vec<String> {
        let mut out = Vec::new();
        serve_batch(service, input.as_bytes(), &mut out).expect("serve_batch");
        String::from_utf8(out)
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn json_reader_round_trips_request_shapes() {
        let value = parse_json(
            r#"{"v": 1, "id": 7, "op": "check", "epsilon": 0.05, "noise": [0.999, 0.99],
                "note": "a\tbA\n", "flag": true, "none": null}"#,
        )
        .expect("parse");
        assert_eq!(value.get("v"), Some(&Json::Num(1.0)));
        assert_eq!(value.get("op"), Some(&Json::Str("check".into())));
        assert_eq!(
            value.get("noise"),
            Some(&Json::Arr(vec![Json::Num(0.999), Json::Num(0.99)]))
        );
        assert_eq!(value.get("note"), Some(&Json::Str("a\tbA\n".into())));
        assert_eq!(value.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(value.get("none"), Some(&Json::Null));
        assert_eq!(parse_json("[]").expect("empty array"), Json::Arr(vec![]));
        assert_eq!(parse_json("{}").expect("empty object"), Json::Obj(vec![]));

        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "{\"a\": 1e}",
            "nul",
        ] {
            assert!(parse_json(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn byte_sizes_parse_with_suffixes() {
        assert_eq!(parse_byte_size("512").unwrap(), 512);
        assert_eq!(parse_byte_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_byte_size("256M").unwrap(), 256 << 20);
        assert_eq!(parse_byte_size("2g").unwrap(), 2 << 30);
        assert!(parse_byte_size("").is_err());
        assert!(parse_byte_size("k").is_err());
        assert!(parse_byte_size("12x").is_err());
        assert!(parse_byte_size("-1").is_err());
    }

    #[test]
    fn serve_args_parse_and_reject() {
        let args = parse_serve_args(&[
            "--cache-bytes".into(),
            "64m".into(),
            "--threads=4".into(),
            "--algorithm".into(),
            "2".into(),
            "--shared-table=on".into(),
        ])
        .expect("parse");
        assert_eq!(args.cache_bytes, Some(64 << 20));
        assert_eq!(args.options.threads, 4);
        assert_eq!(args.options.algorithm, AlgorithmChoice::AlgorithmII);
        assert_eq!(args.options.shared_table, SharedTableMode::On);
        assert_eq!(args.listen, None);

        // Algorithm III and its knobs parse like the one-shot frontend.
        let mpo = parse_serve_args(&[
            "--algorithm=mpo".into(),
            "--svd-threshold=1e-6".into(),
            "--max-bond".into(),
            "32".into(),
        ])
        .expect("parse mpo");
        assert_eq!(mpo.options.algorithm, AlgorithmChoice::Mpo);
        assert_eq!(mpo.options.svd_threshold, 1e-6);
        assert_eq!(mpo.options.max_bond, 32);

        // Flags that have no serving meaning are rejected, not ignored.
        for bad in ["--timeout", "--json", "--samples", "--epsilon"] {
            assert!(
                parse_serve_args(&[bad.to_string(), "1".to_string()]).is_err(),
                "{bad} must be rejected"
            );
        }
        assert!(parse_serve_args(&[
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--unix".into(),
            "/tmp/x".into()
        ])
        .is_err());
    }

    #[test]
    fn batch_answers_check_sweeps_stats_and_errors_in_order() {
        let service = service();
        let input = format!(
            concat!(
                "{{\"v\": 1, \"id\": 1, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05}}\n",
                "this is not json\n",
                "{{\"v\": 1, \"id\": 2, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05}}\n",
                "{{\"id\": 3, \"op\": \"sweep_epsilon\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilons\": [0.2, 0.01, 0.0001]}}\n",
                "{{\"id\": 4, \"op\": \"sweep_noise\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.01, \"noise\": [0.999, 0.9]}}\n",
                "{{\"id\": 5, \"op\": \"stats\"}}\n",
            ),
            i = IDEAL,
            n = NOISY,
        );
        let lines = batch(&service, &input);
        assert_eq!(lines.len(), 6);

        // Line 1: cold check.
        assert!(lines[0].contains("\"id\": 1"), "{}", lines[0]);
        assert!(lines[0].contains("\"ok\": true"), "{}", lines[0]);
        assert!(lines[0].contains("\"cache\": \"miss\""), "{}", lines[0]);
        assert!(
            lines[0].contains("\"verdict\": \"equivalent\""),
            "{}",
            lines[0]
        );
        // Line 2: the malformed line is answered in place, not fatal.
        assert!(lines[1].contains("\"ok\": false"), "{}", lines[1]);
        assert!(lines[1].contains("\"error\""), "{}", lines[1]);
        // Line 3: the repeated pair is a cache hit with identical bounds.
        assert!(lines[2].contains("\"cache\": \"hit\""), "{}", lines[2]);
        let bound = |line: &str| {
            line.split("\"fidelity_lower\": ")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .map(str::to_string)
                .expect("fidelity_lower present")
        };
        assert_eq!(bound(&lines[0]), bound(&lines[2]));
        // Line 4: an ε sweep carries one row per threshold.
        assert!(
            lines[3].contains("\"op\": \"sweep_epsilon\""),
            "{}",
            lines[3]
        );
        assert_eq!(lines[3].matches("\"epsilon\":").count(), 3, "{}", lines[3]);
        // Line 5: a noise sweep echoes the strengths.
        assert!(lines[4].contains("\"noise\": 0.999000"), "{}", lines[4]);
        assert_eq!(lines[4].matches("\"fidelity\":").count(), 2, "{}", lines[4]);
        // Line 6: the stats barrier reflects the four circuit requests
        // (one distinct pair: 1 miss + 3 hits, 1 compile).
        assert!(lines[5].contains("\"op\": \"stats\""), "{}", lines[5]);
        assert!(lines[5].contains("\"hits\": 3"), "{}", lines[5]);
        assert!(lines[5].contains("\"misses\": 1"), "{}", lines[5]);
        assert!(lines[5].contains("\"compiles\": 1"), "{}", lines[5]);

        // Each response line is itself valid JSON for our reader.
        for line in &lines {
            assert!(parse_json(line).is_ok(), "unparseable response `{line}`");
        }
    }

    #[test]
    fn per_request_algorithm_overrides_key_separately() {
        let service = service();
        let input = format!(
            concat!(
                "{{\"id\": 1, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05}}\n",
                "{{\"id\": 2, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05, \"algorithm\": \"mpo\"}}\n",
                "{{\"id\": 3, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05, \"algorithm\": \"2\"}}\n",
                "{{\"id\": 4, \"op\": \"check\", \"ideal\": \"{i}\", ",
                "\"noisy\": \"{n}\", \"epsilon\": 0.05, \"algorithm\": \"warp\"}}\n",
            ),
            i = IDEAL,
            n = NOISY,
        );
        let lines = batch(&service, &input);
        assert_eq!(lines.len(), 4);
        let key = |line: &str| {
            line.split("\"key\": \"")
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .map(str::to_string)
                .expect("key present")
        };
        // Three distinct sessions: default, mpo override, exact override.
        assert!(lines[0].contains("\"cache\": \"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"cache\": \"miss\""), "{}", lines[1]);
        assert!(lines[2].contains("\"cache\": \"miss\""), "{}", lines[2]);
        assert_ne!(key(&lines[0]), key(&lines[1]));
        assert_ne!(key(&lines[0]), key(&lines[2]));
        assert_ne!(key(&lines[1]), key(&lines[2]));
        // The MPO response reports its method and interval metadata; the
        // exact ones say so too, without the MPO-only fields.
        assert!(lines[1].contains("\"method\": \"mpo\""), "{}", lines[1]);
        assert!(lines[1].contains("\"trunc_error\":"), "{}", lines[1]);
        assert!(lines[1].contains("\"bond_max\":"), "{}", lines[1]);
        assert!(lines[2].contains("\"method\": \"2\""), "{}", lines[2]);
        assert!(!lines[2].contains("\"trunc_error\""), "{}", lines[2]);
        // All three backends agree on this easy pair.
        for line in &lines[..3] {
            assert!(line.contains("\"verdict\": \"equivalent\""), "{line}");
        }
        // An unknown override is a structured error, not a crash.
        assert!(lines[3].contains("\"ok\": false"), "{}", lines[3]);
        assert!(lines[3].contains("unknown algorithm"), "{}", lines[3]);
    }

    #[test]
    fn request_level_failures_are_structured_errors() {
        let service = service();
        let cases: Vec<(String, &str)> = vec![
            // Unknown op.
            (r#"{"id": 1, "op": "frobnicate"}"#.to_string(), "unknown op"),
            // Wrong protocol version.
            (r#"{"v": 2, "id": 2, "op": "stats"}"#.to_string(), "version"),
            // Missing epsilon.
            (
                format!(r#"{{"id": 3, "op": "check", "ideal": "{IDEAL}", "noisy": "{NOISY}"}}"#),
                "missing `epsilon`",
            ),
            // Missing circuits.
            (
                r#"{"id": 4, "op": "check", "epsilon": 0.1}"#.to_string(),
                "missing `ideal`",
            ),
            // Both inline and file.
            (
                format!(
                    "{{\"id\": 5, \"op\": \"check\", \"epsilon\": 0.1, \"ideal\": \"{IDEAL}\", \
                     \"ideal_file\": \"/tmp/x.qasm\", \"noisy\": \"{NOISY}\"}}"
                ),
                "exclusive",
            ),
            // QASM that does not parse.
            (
                format!(
                    "{{\"id\": 6, \"op\": \"check\", \"epsilon\": 0.1, \"ideal\": \"garbage\", \
                     \"noisy\": \"{NOISY}\"}}"
                ),
                "`ideal`",
            ),
            // Bad epsilons array.
            (
                format!(
                    "{{\"id\": 7, \"op\": \"sweep_epsilon\", \"ideal\": \"{IDEAL}\", \
                     \"noisy\": \"{NOISY}\", \"epsilons\": []}}"
                ),
                "must not be empty",
            ),
        ];
        for (line, needle) in cases {
            let lines = batch(&service, &format!("{line}\n"));
            assert_eq!(lines.len(), 1, "{line}");
            assert!(lines[0].contains("\"ok\": false"), "{}", lines[0]);
            assert!(
                lines[0].contains(needle),
                "`{}` should mention `{needle}`",
                lines[0]
            );
        }
        // Nothing was cached by any of those.
        assert_eq!(service.stats().sessions, 0);

        // A checker-level error (ε out of range) reports in-band too —
        // and still caches the compiled pair for later valid queries.
        let line = format!(
            r#"{{"id": 8, "op": "check", "epsilon": 1.5, "ideal": "{IDEAL}", "noisy": "{NOISY}"}}"#
        );
        let lines = batch(&service, &format!("{line}\n"));
        assert!(lines[0].contains("\"ok\": false"), "{}", lines[0]);
        assert!(lines[0].contains("epsilon"), "{}", lines[0]);
        assert_eq!(service.stats().sessions, 1);
    }

    #[test]
    fn tcp_transport_streams_responses() {
        let service = Arc::new(service());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || serve_tcp(service, listener, Some(1)))
        };
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let request = format!(
            "{{\"v\": 1, \"id\": 9, \"op\": \"check\", \"ideal\": \"{IDEAL}\", \
             \"noisy\": \"{NOISY}\", \"epsilon\": 0.05}}\n"
        );
        // Two requests written separately: the second must be answered
        // from the session the first compiled.
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for expected in ["\"cache\": \"miss\"", "\"cache\": \"hit\""] {
            stream.write_all(request.as_bytes()).expect("write");
            stream.flush().expect("flush");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert!(line.contains("\"ok\": true"), "{line}");
            assert!(line.contains(expected), "{line}");
        }
        drop(stream);
        server.join().expect("join").expect("serve_tcp");
        assert_eq!(service.stats().compiles, 1);
    }
}
