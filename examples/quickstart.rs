//! Quickstart: the paper's running example (Figs. 1–6) end to end.
//!
//! Builds the noisy 2-qubit QFT of Fig. 2, computes the Jamiolkowski
//! fidelity with both algorithms, and makes the ε-equivalence decision of
//! §IV-A — reproducing the closed-form answer `F_J = p²`.
//!
//! Run with: `cargo run --release --example quickstart`

use qaec::{check_equivalence, fidelity_alg1, fidelity_alg2, AlgorithmChoice, CheckOptions};
use qaec_circuit::{Circuit, NoiseChannel};
use std::f64::consts::FRAC_PI_2;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = 0.95;

    // Fig. 2: QFT₂ with a bit flip on q2 and a phase flip after S on q1.
    let mut noisy = Circuit::new(2);
    noisy
        .h(0)
        .noise(NoiseChannel::BitFlip { p }, &[1])
        .cp(FRAC_PI_2, 1, 0)
        .noise(NoiseChannel::PhaseFlip { p }, &[0])
        .h(1)
        .swap(0, 1);
    let ideal = noisy.ideal();

    println!("Ideal circuit (Fig. 1):\n{}\n", ideal.draw());
    println!("Noisy implementation (Fig. 2):\n{}\n", noisy.draw());

    // Algorithm I: four trace terms, one per Kraus selection (Example 3).
    let alg1 = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmI,
            ..CheckOptions::default()
        },
    )?;
    println!(
        "Algorithm I : F_J = {:.6}  ({} trace terms, max TDD size {} nodes, {:?})",
        alg1.fidelity_lower, alg1.terms_computed, alg1.max_nodes, alg1.elapsed
    );

    // Algorithm II: one doubled network (Example 4).
    let alg2 = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())?;
    println!(
        "Algorithm II: F_J = {:.6}  (single contraction, max TDD size {} nodes, {:?})",
        alg2.fidelity, alg2.max_nodes, alg2.elapsed
    );

    println!("Closed form : F_J = p² = {:.6}\n", p * p);
    assert!((alg1.fidelity_lower - p * p).abs() < 1e-9);
    assert!((alg2.fidelity - p * p).abs() < 1e-9);

    // The ε-equivalence decision of §IV-A: for ε = 0.1 a single trace
    // term already certifies equivalence.
    for eps in [0.1, 0.05] {
        let report = check_equivalence(&ideal, &noisy, eps, &CheckOptions::default())?;
        println!("ε = {eps:<4} → {report}");
    }
    Ok(())
}
