//! File-based verification pipeline over OpenQASM 2.
//!
//! Writes an ideal benchmark and its noisy implementation to `.qasm`
//! files (noise encoded as `// qaec.noise:` directives that other tools
//! ignore), reads them back, and runs the equivalence check — the shape
//! of a CI gate for a compiler toolchain.
//!
//! Run with: `cargo run --release --example qasm_pipeline`

use qaec::{check_equivalence, CheckOptions};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{qasm, NoiseChannel};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("qaec_pipeline");
    fs::create_dir_all(&dir)?;
    let ideal_path = dir.join("qft4.qasm");
    let noisy_path = dir.join("qft4_noisy.qasm");

    // Producer side: emit the circuits.
    let ideal = qft(4, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 2);
    fs::write(&ideal_path, qasm::write(&ideal))?;
    fs::write(&noisy_path, qasm::write(&noisy))?;
    println!("wrote {}", ideal_path.display());
    println!("wrote {}\n", noisy_path.display());

    let noisy_text = fs::read_to_string(&noisy_path)?;
    let directive = noisy_text
        .lines()
        .find(|l| l.contains("qaec.noise"))
        .expect("noise directive present");
    println!("noise directive sample: {directive}\n");

    // Consumer side: parse and check.
    let ideal_back = qasm::parse(&fs::read_to_string(&ideal_path)?)?;
    let noisy_back = qasm::parse(&noisy_text)?;
    assert_eq!(ideal_back, ideal);
    assert_eq!(noisy_back, noisy);

    for eps in [0.05, 0.001] {
        let report = check_equivalence(&ideal_back, &noisy_back, eps, &CheckOptions::default())?;
        println!("ε = {eps:<6} → {report}");
    }

    fs::remove_file(ideal_path).ok();
    fs::remove_file(noisy_path).ok();
    Ok(())
}
