//! The Algorithm I ↔ Algorithm II crossover (the paper's Fig. 7).
//!
//! Algorithm I contracts 4^k small networks; Algorithm II contracts one
//! network on twice the qubits. With a single noise site Algorithm I is
//! usually faster; every extra site multiplies its work by 4 while
//! Algorithm II barely notices. This example sweeps the number of
//! depolarizing noise sites on a QFT and prints both run times and their
//! log-ratio — the quantity plotted in Fig. 7.
//!
//! Run with: `cargo run --release --example algorithm_crossover`

use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4;
    let ideal = qft(n, QftStyle::DecomposedNoSwaps);
    let channel = NoiseChannel::Depolarizing { p: 0.999 };

    println!("qft{n}, depolarizing noise, exact fidelity with both algorithms\n");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>14}",
        "noises", "t1 (Alg I)", "t2 (Alg II)", "log10 t1/t2", "ΔF"
    );

    for k in 1..=6usize {
        let noisy = insert_random_noise(&ideal, &channel, k, 0xF16 + k as u64);

        let start = Instant::now();
        let r1 = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default())?;
        let t1 = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let r2 = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())?;
        let t2 = start.elapsed().as_secs_f64();

        println!(
            "{k:>7} {t1:>11.4}s {t2:>11.4}s {:>12.2} {:>14.2e}",
            (t1 / t2).log10(),
            (r1.fidelity_lower - r2.fidelity).abs()
        );
    }

    println!(
        "\nThe ratio grows ≈ linearly in the noise count (Alg I is exponential in k),\n\
         reproducing the slope of the paper's Fig. 7; the crossover sits at k ≈ 1–2."
    );
    Ok(())
}
