//! Monte Carlo fidelity estimation vs the exact algorithms.
//!
//! When a circuit has many noise sites, Algorithm I's 4^k terms are
//! unaffordable and even Algorithm II's doubled network can grow. The
//! sampling estimator (`qaec::fidelity_monte_carlo`) trades exactness for
//! near-constant cost: it importance-samples Kraus strings, reuses
//! Algorithm I's miter machinery, memoizes repeated strings (under light
//! noise almost every sample is the identity string), and reports a
//! standard error.
//!
//! Run with: `cargo run --release --example monte_carlo_estimation`

use qaec::{fidelity_alg1, fidelity_alg2, fidelity_monte_carlo, CheckOptions};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ideal = qft(4, QftStyle::DecomposedNoSwaps);
    let opts = CheckOptions::default();

    println!("qft4 with k depolarizing sites (p = 0.999), exact vs Monte Carlo (N = 2000)\n");
    println!(
        "{:>3} {:>12} {:>10} {:>12} {:>10} {:>14} {:>9} {:>9}",
        "k", "AlgI F", "t(AlgI)", "AlgII F", "t(AlgII)", "MC F̂ ± se", "strings", "t(MC)"
    );

    for k in [2usize, 4, 6, 8] {
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            k,
            7 + k as u64,
        );

        let (alg1_cell, t1) = if k <= 6 {
            let start = Instant::now();
            let r = fidelity_alg1(&ideal, &noisy, None, &opts)?;
            (
                format!("{:.8}", r.fidelity_lower),
                format!("{:.2?}", start.elapsed()),
            )
        } else {
            ("(4^8 terms)".to_string(), "skipped".to_string())
        };

        let start = Instant::now();
        let r2 = fidelity_alg2(&ideal, &noisy, &opts)?;
        let t2 = start.elapsed();

        let start = Instant::now();
        let mc = fidelity_monte_carlo(&ideal, &noisy, 2000, 0xACC, &opts)?;
        let tmc = start.elapsed();

        println!(
            "{k:>3} {alg1_cell:>12} {t1:>10} {:>12.8} {:>10.2?} {:>8.5}±{:<6.0e} {:>8} {:>9.2?}",
            r2.fidelity, t2, mc.estimate, mc.std_error, mc.distinct_strings, tmc
        );
        assert!(
            (mc.estimate - r2.fidelity).abs() < 6.0 * mc.std_error + 1e-6,
            "estimator outside its own error bars"
        );
    }

    println!(
        "\nUnder light noise the sampler touches a handful of distinct Kraus strings\n\
         (the identity string dominates), so its cost barely grows with k while\n\
         Algorithm I's quadruples per site."
    );
    Ok(())
}
