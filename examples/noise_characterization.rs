//! Characterizing how different noise channels degrade a circuit.
//!
//! Sweeps the error parameter of each built-in channel on a Grover
//! circuit and prints the resulting Jamiolkowski fidelity — the kind of
//! average-case error budget (§III, "physical interpretation") a
//! compilation pipeline would consult when choosing qubit mappings.
//!
//! Run with: `cargo run --release --example noise_characterization`

use qaec::{jamiolkowski_fidelity, CheckOptions};
use qaec_circuit::generators::{grover, GroverOptions};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::NoiseChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ideal = grover(
        2,
        GroverOptions {
            iterations: 1,
            marked: 2,
            decompose_toffoli: true,
            ..Default::default()
        },
    );
    println!(
        "grover (3 qubits, {} gates), 3 random noise sites per channel\n",
        ideal.gate_count()
    );

    let errors = [0.001, 0.005, 0.01, 0.05, 0.1];
    print!("{:<22}", "channel \\ error");
    for e in errors {
        print!("{e:>10}");
    }
    println!();

    type ChannelFactory = Box<dyn Fn(f64) -> NoiseChannel>;
    let channels: Vec<(&str, ChannelFactory)> = vec![
        (
            "bit_flip",
            Box::new(|e| NoiseChannel::BitFlip { p: 1.0 - e }),
        ),
        (
            "phase_flip",
            Box::new(|e| NoiseChannel::PhaseFlip { p: 1.0 - e }),
        ),
        (
            "bit_phase_flip",
            Box::new(|e| NoiseChannel::BitPhaseFlip { p: 1.0 - e }),
        ),
        (
            "depolarizing",
            Box::new(|e| NoiseChannel::Depolarizing { p: 1.0 - e }),
        ),
        (
            "amplitude_damping",
            Box::new(|e| NoiseChannel::AmplitudeDamping { gamma: e }),
        ),
        (
            "phase_damping",
            Box::new(|e| NoiseChannel::PhaseDamping { gamma: e }),
        ),
    ];

    for (name, make) in channels {
        print!("{name:<22}");
        for e in errors {
            let noisy = insert_random_noise(&ideal, &make(e), 3, 0xC0FFEE);
            let f = jamiolkowski_fidelity(&ideal, &noisy, &CheckOptions::default())?;
            print!("{f:>10.6}");
        }
        println!();
    }

    println!(
        "\nReading guide: a row's decay rate is the channel's impact on this circuit;\n\
         amplitude damping is non-unital, so its fidelity is not symmetric in the\n\
         basis — compare against phase damping at equal γ."
    );
    Ok(())
}
