//! Finding the per-gate error budget that keeps a circuit ε-equivalent.
//!
//! Inverse use of the checker: given a fidelity budget, binary-search the
//! largest per-gate depolarizing error rate under which the device-model
//! implementation still passes `check_equivalence`. This is the question
//! a hardware team asks when qualifying a device for a workload.
//!
//! Run with: `cargo run --release --example error_budget`

use qaec::{check_equivalence, CheckOptions, Verdict};
use qaec_circuit::generators::{ghz, qft, QftStyle};
use qaec_circuit::noise_insertion::device_noise_model;
use qaec_circuit::{Circuit, NoiseChannel};

/// Largest per-gate error (to 1e-6) that keeps the device-model circuit
/// ε-equivalent.
fn max_tolerable_error(ideal: &Circuit, epsilon: f64) -> f64 {
    let passes = |error: f64| {
        let noisy = device_noise_model(
            ideal,
            &NoiseChannel::Depolarizing { p: 1.0 - error },
            &NoiseChannel::TwoQubitDepolarizing {
                p: 1.0 - 5.0 * error,
            },
        );
        matches!(
            check_equivalence(ideal, &noisy, epsilon, &CheckOptions::default())
                .expect("check")
                .verdict,
            Verdict::Equivalent
        )
    };
    let (mut lo, mut hi) = (0.0f64, 0.2f64);
    if passes(hi) {
        return hi;
    }
    while hi - lo > 1e-6 {
        let mid = 0.5 * (lo + hi);
        if passes(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    println!("per-gate depolarizing budget (2-qubit gates 5x worse) for ε-equivalence\n");
    println!(
        "{:<8} {:>7} {:>7} {:>12} {:>12} {:>12}",
        "circuit", "qubits", "gates", "ε=0.10", "ε=0.05", "ε=0.01"
    );
    let circuits: Vec<(&str, Circuit)> = vec![
        ("ghz4", ghz(4)),
        ("ghz8", ghz(8)),
        ("qft3", qft(3, QftStyle::DecomposedNoSwaps)),
        ("qft5", qft(5, QftStyle::DecomposedNoSwaps)),
    ];
    for (name, ideal) in circuits {
        print!(
            "{name:<8} {:>7} {:>7}",
            ideal.n_qubits(),
            ideal.gate_count()
        );
        for eps in [0.10, 0.05, 0.01] {
            let budget = max_tolerable_error(&ideal, eps);
            print!(" {budget:>12.6}");
        }
        println!();
    }
    println!(
        "\nLonger circuits burn the budget faster (the chaining property bounds the\n\
         error growth as linear in gate count); a tighter ε shrinks it further."
    );
}
