//! Verifying a compiler pass: exact check of the rewrite, then an
//! ε-check of the rewritten circuit on a noisy device model.
//!
//! The "compiler" here is the controlled-phase decomposition + SWAP
//! removal that turns the textbook QFT into the device-native form used
//! by the paper's benchmark suite. Step 1 proves the rewrite is exactly
//! correct up to the intended qubit reversal; step 2 asks whether the
//! compiled circuit survives a realistic noise model within budget.
//!
//! Run with: `cargo run --release --example compiler_verification`

use qaec::exact::{check_unitary_equivalence, ExactVerdict};
use qaec::{check_equivalence, CheckOptions};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::device_noise_model;
use qaec_circuit::NoiseChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 5;

    // Source: textbook QFT (with final swaps). Target: decomposed QFT
    // without swaps, plus explicit swaps appended to restore the order —
    // if the "compiler" is right, the two are exactly equivalent.
    let source = qft(n, QftStyle::Textbook);
    let mut compiled = qft(n, QftStyle::DecomposedNoSwaps);
    for q in 0..n / 2 {
        compiled.swap(q, n - 1 - q);
    }

    println!("step 1: exact equivalence of the rewrite (|tr(U†V)| = d test)");
    let report = check_unitary_equivalence(&source, &compiled, &CheckOptions::default())?;
    match report.verdict {
        ExactVerdict::Equal => println!(
            "  ✓ exactly equal — tr = {}, {} max nodes, {:.3?}\n",
            report.trace, report.max_nodes, report.elapsed
        ),
        other => {
            println!("  ✗ rewrite broken: {other:?}");
            return Ok(());
        }
    }

    // Negative control: a buggy compiler that forgot one swap.
    let mut buggy = qft(n, QftStyle::DecomposedNoSwaps);
    for q in 1..n / 2 {
        buggy.swap(q, n - 1 - q);
    }
    let report = check_unitary_equivalence(&source, &buggy, &CheckOptions::default())?;
    println!(
        "step 2: negative control (missing swap) → {:?}\n",
        report.verdict
    );

    // Step 3: does the compiled circuit run within budget on the device?
    println!("step 3: ε-check of the compiled circuit on the device noise model");
    let noisy = device_noise_model(
        &compiled,
        &NoiseChannel::Depolarizing { p: 0.9995 },
        &NoiseChannel::TwoQubitDepolarizing { p: 0.998 },
    );
    for eps in [0.2, 0.1, 0.05] {
        let report = check_equivalence(&compiled, &noisy, eps, &CheckOptions::default())?;
        println!("  ε = {eps:<5} → {report}");
    }

    // Step 4: and is the noisy *compiled* circuit still ε-close to the
    // original *source* semantics? (End-to-end, rewrite + noise.)
    println!("\nstep 4: end-to-end — noisy compiled circuit vs the source circuit");
    let report = check_equivalence(&source, &noisy, 0.1, &CheckOptions::default())?;
    println!("  {report}");
    Ok(())
}
