//! Verifying a circuit against a realistic device noise model.
//!
//! "When there are a large number of noisy gates, which is always the
//! case in actual quantum devices since every gate suffers some degree of
//! noise, this approach [Algorithm II] will be definitely more
//! efficient." — §IV-B.
//!
//! This example attaches a depolarizing channel (p = 0.999, the paper's
//! state-of-the-art error rate) to every qubit touched by every gate of a
//! Bernstein–Vazirani circuit, then asks whether the device still
//! implements the algorithm ε-equivalently. The Kraus-term count is
//! astronomically large (4^k), so Algorithm I is hopeless — exactly the
//! regime Algorithm II exists for.
//!
//! Run with: `cargo run --release --example device_model_check`

use qaec::{check_equivalence, fidelity_alg2, AlgorithmChoice, CheckOptions};
use qaec_circuit::generators::bernstein_vazirani_all_ones;
use qaec_circuit::noise_insertion::noise_after_each_gate;
use qaec_circuit::NoiseChannel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gate_error = 0.001; // p = 0.999
    let channel = NoiseChannel::Depolarizing {
        p: 1.0 - gate_error,
    };

    println!(
        "device model: depolarizing(p = {}) after every gate\n",
        1.0 - gate_error
    );
    println!(
        "{:<6} {:>6} {:>7} {:>12} {:>14} {:>10} {:>9}",
        "bench", "qubits", "noises", "kraus terms", "F_J (Alg II)", "nodes", "time"
    );

    for n in [4usize, 5, 6, 9, 13] {
        let ideal = bernstein_vazirani_all_ones(n);
        let noisy = noise_after_each_gate(&ideal, &channel);
        let report = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())?;
        let terms = noisy.kraus_term_count();
        let terms_str = if terms == usize::MAX {
            ">10^18".to_string()
        } else {
            format!("4^{}", noisy.noise_count())
        };
        println!(
            "bv{n:<4} {:>6} {:>7} {:>12} {:>14.9} {:>10} {:>8.1?}",
            noisy.n_qubits(),
            noisy.noise_count(),
            terms_str,
            report.fidelity,
            report.max_nodes,
            report.elapsed
        );
    }

    // An ε-decision on the largest instance: does the device realize bv13
    // within fidelity budget 2%?
    let ideal = bernstein_vazirani_all_ones(13);
    let noisy = noise_after_each_gate(&ideal, &channel);
    let report = check_equivalence(
        &ideal,
        &noisy,
        0.02,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmII,
            ..CheckOptions::default()
        },
    )?;
    println!("\nbv13 under the device model, ε = 0.02 → {report}");
    Ok(())
}
