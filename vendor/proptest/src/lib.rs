//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this
//! workspace's property tests: the [`proptest!`] macro (with
//! `#![proptest_config(...)]`), [`prop_assert!`] / [`prop_assert_eq!`],
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary`] (`any::<T>()`), [`collection::vec`], and string
//! strategies from a small regex subset (`"(a|bc|d)"` alternations and
//! `"[c1-c2...]{m,n}"` character classes).
//!
//! Cases are generated from a per-test deterministic seed (derived from
//! the test-function name), so failures reproduce across runs. There is
//! no shrinking: a failure reports the case index and message.

pub mod strategy {
    use rand::rngs::StdRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A strategy that always yields clones of one value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    mod ranges {
        use super::{Strategy, TestRng};
        use rand::Rng;

        macro_rules! impl_range_strategy {
            ($($t:ty),*) => {$(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn generate(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )*};
        }

        impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    impl Strategy for &str {
        type Value = String;

        /// String literals are regex-subset strategies; see
        /// [`crate::string`].
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, spanning many magnitudes.
            let mantissa = rng.gen::<f64>() * 2.0 - 1.0;
            let exponent = rng.gen_range(-64i32..=64);
            mantissa * (exponent as f64).exp2()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod string {
    //! String generation from a small regex subset: sequences of
    //! literal characters, `(alt1|alt2|...)` groups, and `[...]`
    //! character classes (with `a-z` ranges and `\n`/`\t`/`\r`/`\\`
    //! escapes), each optionally followed by `{m}`, `{m,n}`, `?`, `*`,
    //! or `+` (unbounded repetition capped at 8).

    use crate::strategy::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Atom>>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse_escape(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> char {
        match chars.next().expect("dangling escape in pattern") {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_class(chars: &mut core::iter::Peekable<core::str::Chars<'_>>) -> Atom {
        let mut ranges = Vec::new();
        loop {
            let c = match chars.next().expect("unterminated character class") {
                ']' => break,
                '\\' => parse_escape(chars),
                c => c,
            };
            if chars.peek() == Some(&'-') {
                chars.next();
                let hi = match chars.next().expect("unterminated range in class") {
                    '\\' => parse_escape(chars),
                    c => c,
                };
                assert!(c <= hi, "inverted range in character class");
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        assert!(!ranges.is_empty(), "empty character class");
        Atom::Class(ranges)
    }

    fn parse_sequence(
        chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
        in_group: bool,
    ) -> Vec<Vec<Atom>> {
        let mut alternatives = Vec::new();
        let mut current: Vec<Atom> = Vec::new();
        loop {
            match chars.peek() {
                None => {
                    assert!(!in_group, "unterminated group in pattern");
                    break;
                }
                Some(')') if in_group => {
                    chars.next();
                    break;
                }
                Some('|') => {
                    chars.next();
                    alternatives.push(core::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
            let atom = match chars.next().unwrap() {
                '[' => parse_class(chars),
                '(' => Atom::Group(parse_sequence(chars, true)),
                '\\' => Atom::Literal(parse_escape(chars)),
                c => Atom::Literal(c),
            };
            current.push(atom);
        }
        alternatives.push(current);
        alternatives
    }

    fn quantifier(
        chars: &mut core::iter::Peekable<core::str::Chars<'_>>,
    ) -> Option<(usize, usize)> {
        const UNBOUNDED_CAP: usize = 8;
        match chars.peek() {
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            Some('*') => {
                chars.next();
                Some((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                chars.next();
                Some((1, UNBOUNDED_CAP))
            }
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut min = None;
                loop {
                    match chars.next().expect("unterminated quantifier") {
                        '}' => break,
                        ',' => min = Some(core::mem::take(&mut digits)),
                        d => digits.push(d),
                    }
                }
                let hi: usize = digits.parse().expect("bad quantifier bound");
                let lo = match min {
                    Some(text) => text.parse().expect("bad quantifier bound"),
                    None => hi,
                };
                assert!(lo <= hi, "inverted quantifier bounds");
                Some((lo, hi))
            }
            _ => None,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        // Re-tokenize applying quantifiers: parse one atom at a time at
        // the top level so `{m,n}` can bind to the preceding atom.
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while chars.peek().is_some() {
            if chars.peek() == Some(&'|') {
                panic!("top-level alternation unsupported; wrap in (...)");
            }
            let atom = match chars.next().unwrap() {
                '[' => parse_class(&mut chars),
                '(' => Atom::Group(parse_sequence(&mut chars, true)),
                '\\' => Atom::Literal(parse_escape(&mut chars)),
                c => Atom::Literal(c),
            };
            let (min, max) = quantifier(&mut chars).unwrap_or((1, 1));
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn emit(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                let span = (hi as u32) - (lo as u32) + 1;
                let pick = (lo as u32) + rng.gen_range(0..span);
                out.push(char::from_u32(pick).expect("range crosses surrogates"));
            }
            Atom::Group(alternatives) => {
                let alt = &alternatives[rng.gen_range(0..alternatives.len())];
                for a in alt {
                    emit(a, rng, out);
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let reps = rng.gen_range(piece.min..=piece.max);
            for _ in 0..reps {
                emit(&piece.atom, rng, &mut out);
            }
        }
        out
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure raised by `prop_assert!`-family macros.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    /// Result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-test RNG: the same test name always replays the
    /// same case sequence.
    pub fn rng_for_test(test_name: &str) -> crate::strategy::TestRng {
        // FNV-1a over the fully qualified test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        crate::strategy::TestRng::seed_from_u64(hash)
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Define property tests.
///
/// Supports the forms used in-tree:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in pair_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result: $crate::test_runner::TestCaseResult = (|| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strategy), &mut rng,
                        );
                    )+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        case + 1,
                        config.cases,
                        err.message
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -1.0f64..1.0, z in 900u32..=999) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!((900..=999).contains(&z));
        }

        #[test]
        fn tuples_and_map((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x + 1, y + 1))) {
            prop_assert!((1..=10).contains(&a), "a = {a}");
            prop_assert!((1..=10).contains(&b));
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_has_exact_len(v in crate::collection::vec(0.0f64..1.0, 8usize)) {
            prop_assert_eq!(v.len(), 8);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn any_u64_varies(x in any::<u64>(), y in any::<u64>()) {
            // Astronomically unlikely to collide under a working source.
            prop_assert_ne!(x.wrapping_add(1), x);
            let _ = y;
        }
    }

    #[test]
    fn string_pattern_class_with_quantifier() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[ -~\n]{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn string_pattern_alternation() {
        let mut rng = TestRng::seed_from_u64(2);
        let allowed = ["h", "x", "cx", "u1", "swap", "bogus"];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = crate::string::generate_from_pattern("(h|x|cx|u1|swap|bogus)", &mut rng);
            assert!(allowed.contains(&s.as_str()), "unexpected {s:?}");
            seen.insert(s);
        }
        assert!(seen.len() >= 4, "alternation should explore branches");
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for_test("x::y");
        let mut b = crate::test_runner::rng_for_test("x::y");
        let s = 0u64..u64::MAX;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
