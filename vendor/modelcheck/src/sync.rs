//! Model-aware drop-in replacements for `std::sync::atomic::*` and
//! `std::sync::Mutex`. Outside an active model execution every operation
//! passes straight through to `std` with the caller's ordering, so code
//! compiled against these types behaves identically in regular tests.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

pub use std::sync::atomic::Ordering;

use crate::sched::{
    self, atomic_load, atomic_rmw, atomic_store, fresh_obj_id, in_model, turn_op, turn_op_blocking,
    turn_op_quiet, BlockedOn,
};

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Shared machinery: every model atomic stores its value in a real
/// `AtomicU64` (the passthrough source of truth and the "latest" value for
/// model runs) plus a lazily-assigned object id keying the per-run history.
struct Core {
    std: StdAtomicU64,
    id: StdAtomicU64,
}

impl Core {
    const fn new(v: u64) -> Self {
        Self {
            std: StdAtomicU64::new(v),
            id: StdAtomicU64::new(0),
        }
    }

    fn obj_id(&self) -> u64 {
        let id = self.id.load(StdOrdering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = fresh_obj_id();
        match self
            .id
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    fn load(&self, order: Ordering) -> u64 {
        if !in_model() {
            return self.std.load(order);
        }
        let id = self.obj_id();
        let init = self.std.load(StdOrdering::SeqCst);
        turn_op("atomic.load", |rs, me| {
            Ok(atomic_load(rs, me, id, init, order))
        })
    }

    fn store(&self, value: u64, order: Ordering) {
        if !in_model() {
            self.std.store(value, order);
            return;
        }
        let id = self.obj_id();
        let init = self.std.load(StdOrdering::SeqCst);
        turn_op("atomic.store", |rs, me| {
            atomic_store(rs, me, id, init, value, order);
            Ok(())
        });
        // The scheduler serialises model threads, so updating the
        // passthrough value after the modelled store is not itself a race.
        self.std.store(value, StdOrdering::SeqCst);
    }

    fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64 + Copy) -> u64 {
        if !in_model() {
            // Passthrough RMW: emulate via a CAS loop with the requested
            // ordering on success.
            let mut cur = self.std.load(StdOrdering::Relaxed);
            loop {
                match self
                    .std
                    .compare_exchange_weak(cur, f(cur), order, StdOrdering::Relaxed)
                {
                    Ok(prev) => return prev,
                    Err(prev) => cur = prev,
                }
            }
        }
        let id = self.obj_id();
        let init = self.std.load(StdOrdering::SeqCst);
        let old = turn_op("atomic.rmw", |rs, me| {
            Ok(atomic_rmw(rs, me, id, init, order, f))
        });
        self.std.store(f(old), StdOrdering::SeqCst);
        old
    }

    fn get_mut(&mut self) -> &mut u64 {
        // Exclusive access: no model bookkeeping is possible (or needed).
        self.std.get_mut()
    }
}

macro_rules! model_atomic_int {
    ($(#[$doc:meta])* $name:ident, $prim:ty) => {
        $(#[$doc])*
        pub struct $name {
            core: Core,
        }

        impl $name {
            #[must_use]
            pub const fn new(v: $prim) -> Self {
                Self { core: Core::new(v as u64) }
            }

            #[must_use]
            pub fn load(&self, order: Ordering) -> $prim {
                self.core.load(order) as $prim
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                self.core.store(value as u64, order);
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.core.rmw(order, move |_| value as u64) as $prim
            }

            pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                self.core
                    .rmw(order, move |old| (old as $prim).wrapping_add(value) as u64)
                    as $prim
            }

            pub fn fetch_sub(&self, value: $prim, order: Ordering) -> $prim {
                self.core
                    .rmw(order, move |old| (old as $prim).wrapping_sub(value) as u64)
                    as $prim
            }

            pub fn fetch_max(&self, value: $prim, order: Ordering) -> $prim {
                self.core
                    .rmw(order, move |old| (old as $prim).max(value) as u64)
                    as $prim
            }

            pub fn fetch_min(&self, value: $prim, order: Ordering) -> $prim {
                self.core
                    .rmw(order, move |old| (old as $prim).min(value) as u64)
                    as $prim
            }

            pub fn get_mut(&mut self) -> &mut $prim {
                // SAFETY: the core stores the value as the low bits of a
                // `u64`; on every supported target `$prim` is an unsigned
                // integer no wider than 64 bits stored little-endian within
                // it, and exclusive access rules out concurrent readers of
                // the unused high bits.
                unsafe { &mut *(self.core.get_mut() as *mut u64 as *mut $prim) }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(0)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.core.std.load(StdOrdering::Relaxed))
                    .finish()
            }
        }
    };
}

model_atomic_int!(
    /// Model-aware `AtomicU64`.
    AtomicU64,
    u64
);
model_atomic_int!(
    /// Model-aware `AtomicUsize`.
    AtomicUsize,
    usize
);
model_atomic_int!(
    /// Model-aware `AtomicU32`.
    AtomicU32,
    u32
);

/// Model-aware `AtomicBool`.
pub struct AtomicBool {
    core: Core,
}

impl AtomicBool {
    #[must_use]
    pub const fn new(v: bool) -> Self {
        Self {
            core: Core::new(v as u64),
        }
    }

    #[must_use]
    pub fn load(&self, order: Ordering) -> bool {
        self.core.load(order) != 0
    }

    pub fn store(&self, value: bool, order: Ordering) {
        self.core.store(value as u64, order);
    }

    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        self.core.rmw(order, move |_| value as u64) != 0
    }

    pub fn get_mut(&mut self) -> &mut bool {
        // SAFETY: the value is stored as 0 or 1 in the low byte of a
        // little-endian `u64`; exclusive access makes the reinterpretation
        // sound and every write path stores only 0 or 1.
        unsafe { &mut *(self.core.get_mut() as *mut u64 as *mut bool) }
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AtomicBool")
            .field(&self.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Model-aware `std::sync::Mutex`: in a model execution, acquisition order is
/// a scheduler choice point, contention parks the thread in the scheduler,
/// and lock/unlock edges join vector clocks (acquire/release semantics).
pub struct Mutex<T: ?Sized> {
    id: StdAtomicU64,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            id: StdAtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> std::sync::LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn obj_id(&self) -> u64 {
        let id = self.id.load(StdOrdering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = fresh_obj_id();
        match self
            .id
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if !in_model() {
            return match self.inner.lock() {
                Ok(std) => Ok(MutexGuard {
                    std: Some(std),
                    model_id: None,
                }),
                Err(poison) => Err(std::sync::PoisonError::new(MutexGuard {
                    std: Some(poison.into_inner()),
                    model_id: None,
                })),
            };
        }
        let id = self.obj_id();
        turn_op_blocking(
            "mutex.lock",
            |rs, me| {
                let ms = rs.mutexes.entry(id).or_default();
                match ms.held_by {
                    None => {
                        ms.held_by = Some(me);
                        let release_clock = ms.release_clock.clone();
                        rs.threads[me].clock.join(&release_clock);
                        Ok(Some(()))
                    }
                    Some(owner) if owner == me => Err(format!(
                        "thread {me} re-locks a model mutex it already holds"
                    )),
                    Some(_) => Ok(None),
                }
            },
            || BlockedOn::Mutex(id),
        );
        // The scheduler granted us the mutex, so the real lock is either free
        // or about to be freed by the previous owner's guard drop.
        let std = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(MutexGuard {
            std: Some(std),
            model_id: Some(id),
        })
    }

    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

pub struct MutexGuard<'a, T: ?Sized + 'a> {
    std: Option<std::sync::MutexGuard<'a, T>>,
    model_id: Option<u64>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard taken")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first so the next granted thread cannot
        // block on it, then record the release with the scheduler.
        self.std = None;
        if let Some(id) = self.model_id {
            if sched::in_model() {
                turn_op_quiet("mutex.unlock", |rs, me| {
                    rs.threads[me].clock.bump(me);
                    let clock = rs.threads[me].clock.clone();
                    if let Some(ms) = rs.mutexes.get_mut(&id) {
                        ms.held_by = None;
                        ms.release_clock = clock;
                    }
                    for t in rs.threads.iter_mut() {
                        if t.blocked == Some(BlockedOn::Mutex(id)) {
                            t.blocked = None;
                        }
                    }
                });
            }
        }
    }
}
