//! `RaceCell<T>`: a modelling stand-in for non-atomic shared memory
//! (loom's `UnsafeCell`). Inside a model execution, every access is checked
//! for a happens-before edge against the last write; a miss is reported as a
//! data race and fails the execution — this is what turns a missing
//! release/acquire pair into a *detected* bug rather than silent staleness.
//!
//! Outside a model execution it degrades to a bare `UnsafeCell` with no
//! checking; it is a test-harness primitive, not a production container.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

use crate::sched::{fresh_obj_id, in_model, race_read, race_write, turn_op};

pub struct RaceCell<T> {
    id: StdAtomicU64,
    value: UnsafeCell<T>,
}

// SAFETY: within a model execution the scheduler serialises all accesses and
// the happens-before checker rejects (aborts on) any racy pair, so the
// underlying cell is only ever touched by one thread at a time; sending the
// contained value between threads needs `T: Send`.
unsafe impl<T: Send> Send for RaceCell<T> {}
// SAFETY: shared references only expose `get`/`set`, both of which are
// serialised by the model scheduler (and documented as unsynchronised-single-
// threaded outside a model run); `T: Send` suffices because values are moved
// in and copied out, never aliased by reference across threads.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            id: StdAtomicU64::new(0),
            value: UnsafeCell::new(value),
        }
    }

    fn obj_id(&self) -> u64 {
        let id = self.id.load(StdOrdering::Relaxed);
        if id != 0 {
            return id;
        }
        let fresh = fresh_obj_id();
        match self
            .id
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }

    /// Read the value; in a model run, fails the execution if the last write
    /// is not ordered before this read.
    #[must_use]
    pub fn get(&self) -> T {
        if in_model() {
            let id = self.obj_id();
            turn_op("racecell.get", |rs, me| race_read(rs, me, id));
        }
        // SAFETY: in a model run the scheduler serialises accesses (and the
        // race checker aborted above if this read was concurrent with a
        // write); outside one, callers are single-threaded by contract.
        unsafe { *self.value.get() }
    }

    /// Write the value; in a model run, fails the execution if any
    /// concurrent (unordered) read or write exists.
    pub fn set(&self, value: T) {
        if in_model() {
            let id = self.obj_id();
            turn_op("racecell.set", |rs, me| race_write(rs, me, id));
        }
        // SAFETY: as in `get` — serialised by the model scheduler, race
        // checked above, single-threaded by contract outside a model run.
        unsafe { *self.value.get() = value };
    }
}

impl<T: Copy + Default> Default for RaceCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RaceCell").field(&self.get()).finish()
    }
}
