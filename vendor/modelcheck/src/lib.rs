//! Offline stand-in for [`loom`]: a deterministic, seeded, bounded-exhaustive
//! model checker for small concurrent protocols (up to 4 threads).
//!
//! A closure under test builds its shared state, spawns model threads via
//! [`thread::spawn`], and synchronises through the shim types in [`sync`] and
//! [`cell`]. The explorer runs the closure repeatedly, enumerating distinct
//! thread interleavings (and, for `Relaxed` loads, distinct visible values)
//! depth-first until the space is exhausted or an iteration cap is hit. Any
//! panic, detected data race, or deadlock in any interleaving fails the whole
//! exploration with the schedule that exposed it.
//!
//! ```
//! use std::sync::Arc;
//! use modelcheck::sync::atomic::{AtomicU64, Ordering};
//!
//! modelcheck::model(|| {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let counter = Arc::clone(&counter);
//!             modelcheck::thread::spawn(move || {
//!                 counter.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(counter.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! Outside an active exploration every shim type passes straight through to
//! its `std` counterpart, so production code compiled against the shim (via a
//! `#[cfg]`-selected `sync` module, the loom pattern) behaves identically in
//! regular tests.
//!
//! [`loom`]: https://docs.rs/loom

mod sched;

pub mod cell;
pub mod thread;

pub mod sync {
    pub use crate::shim_sync::{Mutex, MutexGuard};

    pub mod atomic {
        pub use crate::shim_sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

#[path = "sync.rs"]
mod shim_sync;

use std::sync::Arc;

/// Exploration parameters.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Stop after this many executions even if the interleaving space is not
    /// exhausted ("exhaustive-ish": the DFS frontier is deterministic, so a
    /// given cap always explores the same set).
    pub max_iterations: usize,
    /// Rotates every choice point's default pick, steering the DFS through a
    /// different deterministic order of the same space.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_iterations: 10_000,
            seed: 0,
        }
    }
}

/// What an exploration did.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Number of distinct executions run.
    pub iterations: usize,
    /// `true` iff the whole interleaving space was exhausted under the cap.
    pub complete: bool,
}

/// Explore `f` under the default [`Config`], panicking on the first failing
/// interleaving.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Err(report) = model_with_config(Config::default(), f) {
        panic!("{report}");
    }
}

/// Explore `f` under the default [`Config`], returning the failure report of
/// the first failing interleaving instead of panicking — this is what canary
/// tests use to assert that the checker *detects* a seeded bug.
pub fn model_result<F>(f: F) -> Result<Stats, String>
where
    F: Fn() + Send + Sync + 'static,
{
    model_with_config(Config::default(), f)
}

/// Explore `f` under an explicit [`Config`].
pub fn model_with_config<F>(cfg: Config, f: F) -> Result<Stats, String>
where
    F: Fn() + Send + Sync + 'static,
{
    // One exploration at a time per process: the scheduler state is global.
    let _gate = sched::MODEL_GATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let trace = run_once(prefix, cfg.seed, Arc::clone(&f))
            .map_err(|msg| format!("modelcheck: {msg} (iteration {iterations})"))?;
        // Depth-first successor: bump the deepest choice point that still
        // has an untried alternative, drop everything after it.
        let mut next = None;
        for i in (0..trace.len()).rev() {
            let (attempt, alternatives) = trace[i];
            if attempt + 1 < alternatives {
                let mut p: Vec<usize> = trace[..i].iter().map(|&(a, _)| a).collect();
                p.push(attempt + 1);
                next = Some(p);
                break;
            }
        }
        match next {
            None => {
                return Ok(Stats {
                    iterations,
                    complete: true,
                })
            }
            Some(p) if iterations >= cfg.max_iterations => {
                let _ = p;
                return Ok(Stats {
                    iterations,
                    complete: false,
                });
            }
            Some(p) => prefix = p,
        }
    }
}

/// Run a single execution with the given forced choice prefix; returns the
/// recorded choice trace on success, the failure report on abort.
fn run_once(
    prefix: Vec<usize>,
    seed: u64,
    f: Arc<dyn Fn() + Send + Sync>,
) -> Result<Vec<(usize, usize)>, String> {
    sched::init_run(prefix, seed);
    let root = std::thread::spawn(move || sched::run_thread(0, move || f()));
    sched::wait_all_finished();
    let _ = root.join();
    let rs = sched::take_run();
    match rs.aborting {
        Some(msg) => {
            let ops: Vec<String> = rs
                .trace
                .iter()
                .zip(rs.trace_ops.iter())
                .map(|(&(a, n), op)| format!("{op}:{a}/{n}"))
                .collect();
            Err(format!("{msg}; schedule [{}]", ops.join(" ")))
        }
        None => Ok(rs.trace),
    }
}

#[cfg(test)]
mod tests {
    use super::cell::RaceCell;
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::Mutex;
    use super::{model, model_result, model_with_config, Config};
    use std::sync::Arc;

    #[test]
    fn passthrough_outside_model() {
        let a = AtomicU64::new(7);
        assert_eq!(a.load(Ordering::SeqCst), 7);
        a.store(9, Ordering::Release);
        assert_eq!(a.fetch_add(1, Ordering::AcqRel), 9);
        assert_eq!(a.swap(3, Ordering::SeqCst), 10);
        let m = Mutex::new(5u32);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);
        let h = super::thread::spawn(|| 42u8);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn concurrent_increments_are_atomic() {
        let stats = model_result(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    super::thread::spawn(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::Relaxed), 2);
        })
        .expect("atomic increments must never lose updates");
        assert!(stats.complete, "small space should be exhausted");
        assert!(stats.iterations > 1, "expected more than one interleaving");
    }

    #[test]
    fn release_acquire_publication_is_clean() {
        model(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let data = Arc::new(RaceCell::new(0u64));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let writer = super::thread::spawn(move || {
                d2.set(99);
                f2.store(1, Ordering::Release);
            });
            let (f3, d3) = (Arc::clone(&flag), Arc::clone(&data));
            let reader = super::thread::spawn(move || {
                if f3.load(Ordering::Acquire) == 1 {
                    assert_eq!(d3.get(), 99);
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        });
    }

    #[test]
    fn relaxed_publication_race_is_detected() {
        let report = model_result(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let data = Arc::new(RaceCell::new(0u64));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let writer = super::thread::spawn(move || {
                d2.set(99);
                // BUG under test: Relaxed publication does not order the
                // RaceCell write before the reader's access.
                f2.store(1, Ordering::Relaxed);
            });
            let (f3, d3) = (Arc::clone(&flag), Arc::clone(&data));
            let reader = super::thread::spawn(move || {
                if f3.load(Ordering::Relaxed) == 1 {
                    let _ = d3.get();
                }
            });
            writer.join().unwrap();
            reader.join().unwrap();
        })
        .expect_err("the checker must catch the Relaxed publication race");
        assert!(report.contains("data race"), "unexpected report: {report}");
    }

    #[test]
    fn stale_relaxed_loads_are_explored() {
        // A Relaxed load may legitimately miss a concurrent Relaxed store;
        // the model must explore both the fresh and the stale outcome.
        let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = model_result(move || {
            let cell = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&cell);
            let writer = super::thread::spawn(move || {
                c2.store(1, Ordering::Relaxed);
            });
            let c3 = Arc::clone(&cell);
            let seen = Arc::clone(&seen2);
            let reader = super::thread::spawn(move || {
                let v = c3.load(Ordering::Relaxed);
                seen.lock().unwrap().insert(v);
            });
            writer.join().unwrap();
            reader.join().unwrap();
        })
        .expect("no failure expected");
        assert!(stats.complete);
        let seen = seen.lock().unwrap();
        assert!(
            seen.contains(&0) && seen.contains(&1),
            "explored outcomes: {seen:?}"
        );
    }

    #[test]
    fn mutex_provides_mutual_exclusion_and_ordering() {
        model(|| {
            let total = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let total = Arc::clone(&total);
                    super::thread::spawn(move || {
                        let mut g = total.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*total.lock().unwrap(), 2);
        });
    }

    #[test]
    fn opposite_lock_order_deadlock_is_detected() {
        let report = model_result(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t1 = super::thread::spawn(move || {
                let _ga = a1.lock().unwrap();
                let _gb = b1.lock().unwrap();
            });
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t2 = super::thread::spawn(move || {
                let _gb = b2.lock().unwrap();
                let _ga = a2.lock().unwrap();
            });
            let _ = t1.join();
            let _ = t2.join();
        })
        .expect_err("opposite lock order must deadlock in some interleaving");
        assert!(report.contains("deadlock"), "unexpected report: {report}");
    }

    #[test]
    fn iteration_cap_is_honoured() {
        let stats = model_with_config(
            Config {
                max_iterations: 3,
                seed: 0,
            },
            || {
                let x = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..3)
                    .map(|_| {
                        let x = Arc::clone(&x);
                        super::thread::spawn(move || {
                            x.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            },
        )
        .expect("no failure expected");
        assert_eq!(stats.iterations, 3);
        assert!(!stats.complete);
    }

    #[test]
    fn seed_changes_exploration_order_not_outcome() {
        for seed in [0u64, 1, 7] {
            let stats = model_with_config(
                Config {
                    max_iterations: 10_000,
                    seed,
                },
                || {
                    let x = Arc::new(AtomicU64::new(0));
                    let x2 = Arc::clone(&x);
                    let t = super::thread::spawn(move || {
                        x2.store(5, Ordering::Release);
                    });
                    let _ = x.load(Ordering::Acquire);
                    t.join().unwrap();
                },
            )
            .expect("no failure expected");
            assert!(stats.complete, "seed {seed} should still exhaust the space");
        }
    }
}
