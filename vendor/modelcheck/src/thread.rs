//! Model-aware `thread::spawn`/`JoinHandle`. Inside a model execution,
//! spawned closures become model threads driven by the deterministic
//! scheduler; outside one they delegate to `std::thread`.

use std::sync::{Arc, Mutex};

use crate::sched::{cur_tid, register_child, run_thread, turn_op, turn_op_blocking, BlockedOn};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
}

pub struct JoinHandle<T> {
    inner: Inner<T>,
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if cur_tid().is_none() {
        return JoinHandle {
            inner: Inner::Std(std::thread::spawn(f)),
        };
    }
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = turn_op("thread.spawn", register_child);
    // The OS thread parks in the scheduler until it is picked to run.
    std::thread::spawn(move || {
        run_thread(tid, move || {
            let value = f();
            *slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
        });
    });
    JoinHandle {
        inner: Inner::Model { tid, result },
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish. In a model execution this parks the
    /// caller in the scheduler and joins the child's final vector clock
    /// (everything the child did happens-before the return of `join`).
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Std(handle) => handle.join(),
            Inner::Model { tid, result } => {
                turn_op_blocking(
                    "thread.join",
                    |rs, me| {
                        if rs.threads[tid].finished {
                            let final_clock = rs.threads[tid]
                                .final_clock
                                .clone()
                                .expect("finished thread has a final clock");
                            rs.threads[me].clock.join(&final_clock);
                            Ok(Some(()))
                        } else {
                            Ok(None)
                        }
                    },
                    || BlockedOn::Join(tid),
                );
                let value = result
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("joined model thread left no result");
                Ok(value)
            }
        }
    }
}
