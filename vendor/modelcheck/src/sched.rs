//! The deterministic scheduler at the heart of the model checker.
//!
//! One model "execution" serialises every model thread onto a single logical
//! timeline: exactly one thread is ever runnable, and before each visible
//! operation (atomic access, mutex acquire/release, `RaceCell` access, spawn,
//! join) the scheduler picks which thread performs the next step. Each pick is
//! a recorded *choice point*; the explorer in `lib.rs` replays prefixes of
//! recorded choices depth-first to enumerate distinct interleavings.
//!
//! Memory-model approximation (in the spirit of loom, much smaller):
//! - Every atomic location keeps its full modification order (store history).
//!   A load may observe any store not ruled out by coherence (never older than
//!   one this thread already observed) or happens-before (never older than a
//!   store this thread's vector clock already dominates). Which visible store
//!   a load returns is itself a choice point — this is how stale `Relaxed`
//!   values are explored.
//! - `Release` stores snapshot the storing thread's vector clock; `Acquire`
//!   loads that observe them join it. RMWs always extend a release sequence.
//!   `SeqCst` is approximated as `AcqRel` (no single total order is modelled);
//!   protocols relying on SC-only guarantees are out of scope.
//! - `RaceCell` accesses are checked for happens-before ordering against the
//!   last write; a miss is reported as a data race and fails the execution.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Condvar, Mutex, MutexGuard};

pub(crate) const MAX_THREADS: usize = 4;
/// Backstop against protocols that loop forever under the model: a single
/// execution may not take more than this many recorded choice points.
const MAX_CHOICES: usize = 20_000;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock([u64; MAX_THREADS]);

impl VClock {
    pub(crate) fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            self.0[i] = self.0[i].max(other.0[i]);
        }
    }

    /// `true` iff every event in `other` is known to `self` (i.e. the event
    /// set stamped `other` happens-before the point stamped `self`).
    pub(crate) fn dominates(&self, other: &VClock) -> bool {
        (0..MAX_THREADS).all(|i| self.0[i] >= other.0[i])
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        self.0[tid] += 1;
    }
}

// ---------------------------------------------------------------------------
// Per-run state
// ---------------------------------------------------------------------------

pub(crate) struct StoreEntry {
    pub value: u64,
    pub clock: VClock,
    /// Store carries release semantics (directly, or by continuing a release
    /// sequence through an RMW).
    pub release: bool,
}

pub(crate) struct AtomicState {
    pub history: Vec<StoreEntry>,
    /// Coherence floor per thread: index of the newest store in `history`
    /// this thread has observed (reads may never go backwards).
    pub last_seen: [usize; MAX_THREADS],
}

#[derive(Default)]
pub(crate) struct RaceState {
    pub last_write: Option<(usize, VClock)>,
    /// Reads since the last write (cleared on write).
    pub reads: Vec<(usize, VClock)>,
}

#[derive(Default)]
pub(crate) struct MutexState {
    pub held_by: Option<usize>,
    pub release_clock: VClock,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum BlockedOn {
    Mutex(u64),
    Join(usize),
}

pub(crate) struct ThreadState {
    pub finished: bool,
    pub blocked: Option<BlockedOn>,
    pub clock: VClock,
    pub final_clock: Option<VClock>,
}

impl ThreadState {
    fn new(clock: VClock) -> Self {
        Self {
            finished: false,
            blocked: None,
            clock,
            final_clock: None,
        }
    }
}

pub(crate) struct RunState {
    pub threads: Vec<ThreadState>,
    /// Index of the only thread allowed to take its next step; `usize::MAX`
    /// when the run is over or aborting (free-for-all unwind mode).
    pub active: usize,
    /// Forced attempt numbers for the leading choice points (DFS replay).
    pub prefix: Vec<usize>,
    /// Recorded `(attempt, alternatives)` per choice point this execution.
    pub trace: Vec<(usize, usize)>,
    /// What each choice point decided (for failure reports).
    pub trace_ops: Vec<&'static str>,
    pub seed: u64,
    pub atomics: HashMap<u64, AtomicState>,
    pub mutexes: HashMap<u64, MutexState>,
    pub races: HashMap<u64, RaceState>,
    pub aborting: Option<String>,
}

/// Panic payload used to unwind model threads once the execution is aborted;
/// `run_thread` recognises it and does not treat it as a user failure.
pub(crate) struct ModelAbort;

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

pub(crate) static SCHED: Mutex<Option<RunState>> = Mutex::new(None);
pub(crate) static SCHED_CV: Condvar = Condvar::new();
/// Serialises whole `model()` explorations (one at a time per process).
pub(crate) static MODEL_GATE: Mutex<()> = Mutex::new(());
static NEXT_OBJ_ID: StdAtomicU64 = StdAtomicU64::new(1);

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

pub(crate) fn cur_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

/// `true` iff the calling thread is a model thread of an active execution.
/// Anything else (regular test threads, the explorer itself) sees the shim
/// types pass straight through to `std`.
pub(crate) fn in_model() -> bool {
    cur_tid().is_some()
}

pub(crate) fn fresh_obj_id() -> u64 {
    NEXT_OBJ_ID.fetch_add(1, StdOrdering::Relaxed)
}

fn sched_lock() -> MutexGuard<'static, Option<RunState>> {
    // A model-thread panic while a guard was live would poison the lock; the
    // state is still coherent (aborting is set), so ignore poison.
    SCHED.lock().unwrap_or_else(|e| e.into_inner())
}

fn sched_wait(g: MutexGuard<'static, Option<RunState>>) -> MutexGuard<'static, Option<RunState>> {
    SCHED_CV.wait(g).unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Choice points and scheduling
// ---------------------------------------------------------------------------

fn choose(rs: &mut RunState, n: usize, what: &'static str) -> usize {
    debug_assert!(n >= 1);
    if n == 1 {
        return 0;
    }
    let pos = rs.trace.len();
    let attempt = rs.prefix.get(pos).copied().unwrap_or(0);
    rs.trace.push((attempt, n));
    rs.trace_ops.push(what);
    if rs.trace.len() > MAX_CHOICES {
        set_abort(
            rs,
            format!("execution exceeded {MAX_CHOICES} choice points — does the protocol loop forever under the model?"),
        );
    }
    ((rs.seed as usize).wrapping_add(attempt)) % n
}

pub(crate) fn set_abort(rs: &mut RunState, msg: String) {
    if rs.aborting.is_none() {
        rs.aborting = Some(msg);
    }
    // Unblock everyone so they can observe the abort and unwind.
    for t in rs.threads.iter_mut() {
        t.blocked = None;
    }
    rs.active = usize::MAX;
}

/// Pick the next thread to run. Called by the currently-active (or finishing)
/// thread with the scheduler lock held.
fn schedule_next(rs: &mut RunState) {
    if rs.aborting.is_some() {
        rs.active = usize::MAX;
        return;
    }
    let cands: Vec<usize> = (0..rs.threads.len())
        .filter(|&i| !rs.threads[i].finished && rs.threads[i].blocked.is_none())
        .collect();
    if cands.is_empty() {
        if rs.threads.iter().all(|t| t.finished) {
            rs.active = usize::MAX;
            return;
        }
        let blocked: Vec<(usize, BlockedOn)> = rs
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.blocked.map(|b| (i, b)))
            .collect();
        set_abort(
            rs,
            format!("deadlock: every live thread is blocked ({blocked:?})"),
        );
        return;
    }
    let k = choose(rs, cands.len(), "sched");
    rs.active = cands[k];
}

/// Run one visible operation for the calling model thread: reschedule first
/// (letting any other runnable thread take steps before this op), then apply
/// `f` under the scheduler lock. `Err` from `f` aborts the whole execution.
pub(crate) fn turn_op<R>(
    what: &'static str,
    f: impl FnOnce(&mut RunState, usize) -> Result<R, String>,
) -> R {
    let me = cur_tid().expect("turn_op called outside a model thread");
    let mut g = wait_for_turn(sched_lock(), me);
    {
        let rs = g.as_mut().expect("no active model run");
        let _ = what;
        schedule_next(rs);
    }
    SCHED_CV.notify_all();
    let mut g = wait_for_turn(g, me);
    let rs = g.as_mut().expect("no active model run");
    match f(rs, me) {
        Ok(r) => {
            SCHED_CV.notify_all();
            r
        }
        Err(msg) => {
            set_abort(rs, msg);
            SCHED_CV.notify_all();
            drop(g);
            panic::panic_any(ModelAbort);
        }
    }
}

/// Like `turn_op` but may block: `attempt` returns `Ok(None)` when the op
/// cannot currently proceed, in which case the thread parks as `blocked`
/// until another thread clears the obstruction.
pub(crate) fn turn_op_blocking<R>(
    what: &'static str,
    mut attempt: impl FnMut(&mut RunState, usize) -> Result<Option<R>, String>,
    blocked_on: impl Fn() -> BlockedOn,
) -> R {
    let me = cur_tid().expect("turn_op_blocking called outside a model thread");
    let mut g = sched_lock();
    loop {
        g = wait_for_turn(g, me);
        {
            let rs = g.as_mut().expect("no active model run");
            let _ = what;
            schedule_next(rs);
        }
        SCHED_CV.notify_all();
        g = wait_for_turn(g, me);
        let rs = g.as_mut().expect("no active model run");
        match attempt(rs, me) {
            Ok(Some(r)) => {
                SCHED_CV.notify_all();
                return r;
            }
            Ok(None) => {
                rs.threads[me].blocked = Some(blocked_on());
                schedule_next(rs);
                SCHED_CV.notify_all();
                // Parked: wait until a releaser clears `blocked`, then loop
                // back and retry the attempt once scheduled again.
            }
            Err(msg) => {
                set_abort(rs, msg);
                SCHED_CV.notify_all();
                drop(g);
                panic::panic_any(ModelAbort);
            }
        }
    }
}

/// Best-effort variant for `Drop` paths (mutex release): never panics, so it
/// is safe during unwinding. If the run is aborting, bookkeeping is skipped.
pub(crate) fn turn_op_quiet(what: &'static str, f: impl FnOnce(&mut RunState, usize)) {
    let me = match cur_tid() {
        Some(me) => me,
        None => return,
    };
    let mut g = sched_lock();
    let aborted = loop {
        let rs = match g.as_mut() {
            Some(rs) => rs,
            None => return,
        };
        if rs.aborting.is_some() {
            break true;
        }
        if rs.active == me && rs.threads[me].blocked.is_none() {
            break false;
        }
        g = sched_wait(g);
    };
    if aborted {
        return;
    }
    let rs = g.as_mut().expect("no active model run");
    let _ = what;
    schedule_next(rs);
    SCHED_CV.notify_all();
    loop {
        let rs = g.as_mut().expect("no active model run");
        if rs.aborting.is_some() {
            return;
        }
        if rs.active == me {
            break;
        }
        g = sched_wait(g);
    }
    let rs = g.as_mut().expect("no active model run");
    f(rs, me);
    SCHED_CV.notify_all();
}

fn wait_for_turn(
    mut g: MutexGuard<'static, Option<RunState>>,
    me: usize,
) -> MutexGuard<'static, Option<RunState>> {
    loop {
        let rs = g.as_mut().expect("no active model run");
        if rs.aborting.is_some() {
            SCHED_CV.notify_all();
            // Release the lock before unwinding so we do not poison it.
            drop(g);
            panic::panic_any(ModelAbort);
        }
        if rs.active == me && rs.threads[me].blocked.is_none() {
            return g;
        }
        g = sched_wait(g);
    }
}

// ---------------------------------------------------------------------------
// Run lifecycle (driven by the explorer in lib.rs)
// ---------------------------------------------------------------------------

/// Install a fresh execution: thread 0 (the root closure) is active.
pub(crate) fn init_run(prefix: Vec<usize>, seed: u64) {
    let mut g = sched_lock();
    assert!(g.is_none(), "a model execution is already active");
    *g = Some(RunState {
        threads: vec![ThreadState::new(VClock::default())],
        active: 0,
        prefix,
        trace: Vec::new(),
        trace_ops: Vec::new(),
        seed,
        atomics: HashMap::new(),
        mutexes: HashMap::new(),
        races: HashMap::new(),
        aborting: None,
    });
}

/// Block the (non-model) explorer thread until every model thread finished.
pub(crate) fn wait_all_finished() {
    let mut g = sched_lock();
    loop {
        let rs = g.as_ref().expect("no active model run");
        if rs.threads.iter().all(|t| t.finished) {
            return;
        }
        g = sched_wait(g);
    }
}

/// Tear down the execution and hand its final state to the explorer.
pub(crate) fn take_run() -> RunState {
    sched_lock().take().expect("no active model run")
}

// ---------------------------------------------------------------------------
// Thread lifecycle
// ---------------------------------------------------------------------------

/// Register a child thread spawned by `parent`; returns the child tid.
pub(crate) fn register_child(rs: &mut RunState, parent: usize) -> Result<usize, String> {
    if rs.threads.len() >= MAX_THREADS {
        return Err(format!("model supports at most {MAX_THREADS} threads"));
    }
    // The spawn itself is an event: everything the parent did so far
    // happens-before everything the child does.
    rs.threads[parent].clock.bump(parent);
    let clock = rs.threads[parent].clock.clone();
    rs.threads.push(ThreadState::new(clock));
    Ok(rs.threads.len() - 1)
}

/// Body wrapper for every model thread (including the root closure).
pub(crate) fn run_thread(tid: usize, body: impl FnOnce()) {
    TID.with(|t| t.set(Some(tid)));
    let should_run = {
        let mut g = sched_lock();
        loop {
            let rs = match g.as_mut() {
                Some(rs) => rs,
                None => break false,
            };
            if rs.aborting.is_some() {
                break false;
            }
            if rs.active == tid {
                break true;
            }
            g = sched_wait(g);
        }
    };
    let result = if should_run {
        panic::catch_unwind(AssertUnwindSafe(body))
    } else {
        Ok(())
    };
    let mut g = sched_lock();
    if let Some(rs) = g.as_mut() {
        if let Err(payload) = result {
            if !payload.is::<ModelAbort>() {
                set_abort(
                    rs,
                    format!("model thread {tid} panicked: {}", describe_panic(&payload)),
                );
            }
        }
        rs.threads[tid].finished = true;
        rs.threads[tid].final_clock = Some(rs.threads[tid].clock.clone());
        for t in rs.threads.iter_mut() {
            if t.blocked == Some(BlockedOn::Join(tid)) {
                t.blocked = None;
            }
        }
        if rs.active == tid || rs.active == usize::MAX {
            schedule_next(rs);
        }
    }
    SCHED_CV.notify_all();
    drop(g);
    TID.with(|t| t.set(None));
}

fn describe_panic(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Atomic operation semantics
// ---------------------------------------------------------------------------

use std::sync::atomic::Ordering;

fn is_acquire(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn is_release(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn atomic_entry(rs: &mut RunState, id: u64, init: u64) -> &mut AtomicState {
    rs.atomics.entry(id).or_insert_with(|| AtomicState {
        // The pre-run value is visible to everyone with no synchronisation
        // debt: release store with the zero clock.
        history: vec![StoreEntry {
            value: init,
            clock: VClock::default(),
            release: true,
        }],
        last_seen: [0; MAX_THREADS],
    })
}

pub(crate) fn atomic_load(
    rs: &mut RunState,
    me: usize,
    id: u64,
    init: u64,
    order: Ordering,
) -> u64 {
    let my_clock = rs.threads[me].clock.clone();
    let (floor, len) = {
        let st = atomic_entry(rs, id, init);
        let start = st.last_seen[me];
        // Happens-before visibility: a store this thread's clock dominates
        // obsoletes everything older than it.
        let mut floor = start;
        for j in start..st.history.len() {
            if my_clock.dominates(&st.history[j].clock) {
                floor = j;
            }
        }
        (floor, st.history.len())
    };
    // Newest first: attempt 0 reads the latest store, later attempts explore
    // progressively staler (still-visible) values.
    let cands: Vec<usize> = (floor..len).rev().collect();
    let k = choose(rs, cands.len(), "load");
    let idx = cands[k];
    let st = rs.atomics.get_mut(&id).expect("atomic state just created");
    st.last_seen[me] = st.last_seen[me].max(idx);
    let value = st.history[idx].value;
    let release = st.history[idx].release;
    let entry_clock = st.history[idx].clock.clone();
    if release && is_acquire(order) {
        rs.threads[me].clock.join(&entry_clock);
    }
    value
}

pub(crate) fn atomic_store(
    rs: &mut RunState,
    me: usize,
    id: u64,
    init: u64,
    value: u64,
    order: Ordering,
) {
    rs.threads[me].clock.bump(me);
    let clock = rs.threads[me].clock.clone();
    let st = atomic_entry(rs, id, init);
    st.history.push(StoreEntry {
        value,
        clock,
        release: is_release(order),
    });
    st.last_seen[me] = st.history.len() - 1;
}

pub(crate) fn atomic_rmw(
    rs: &mut RunState,
    me: usize,
    id: u64,
    init: u64,
    order: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let (old, prev_clock, prev_release) = {
        let st = atomic_entry(rs, id, init);
        let last = st.history.last().expect("history never empty");
        (last.value, last.clock.clone(), last.release)
    };
    if prev_release && is_acquire(order) {
        rs.threads[me].clock.join(&prev_clock);
    }
    rs.threads[me].clock.bump(me);
    let mut clock = rs.threads[me].clock.clone();
    // RMWs continue a release sequence: an acquire load observing this entry
    // must still synchronise with the release store that headed the sequence.
    let release = is_release(order) || prev_release;
    if prev_release {
        clock.join(&prev_clock);
    }
    let st = rs.atomics.get_mut(&id).expect("atomic state just created");
    st.history.push(StoreEntry {
        value: f(old),
        clock,
        release,
    });
    st.last_seen[me] = st.history.len() - 1;
    old
}

// ---------------------------------------------------------------------------
// RaceCell semantics
// ---------------------------------------------------------------------------

pub(crate) fn race_read(rs: &mut RunState, me: usize, id: u64) -> Result<(), String> {
    let my_clock = rs.threads[me].clock.clone();
    let st = rs.races.entry(id).or_default();
    if let Some((wtid, wclock)) = &st.last_write {
        if !my_clock.dominates(wclock) {
            return Err(format!(
                "data race: thread {me} reads a RaceCell whose last write (by thread {wtid}) is not ordered before the read"
            ));
        }
    }
    st.reads.push((me, my_clock));
    Ok(())
}

pub(crate) fn race_write(rs: &mut RunState, me: usize, id: u64) -> Result<(), String> {
    let my_clock = rs.threads[me].clock.clone();
    {
        let st = rs.races.entry(id).or_default();
        if let Some((wtid, wclock)) = &st.last_write {
            if !my_clock.dominates(wclock) {
                return Err(format!(
                    "data race: thread {me} overwrites a RaceCell whose last write (by thread {wtid}) is not ordered before it"
                ));
            }
        }
        for (rtid, rclock) in &st.reads {
            if *rtid != me && !my_clock.dominates(rclock) {
                return Err(format!(
                    "data race: thread {me} writes a RaceCell concurrently read by thread {rtid}"
                ));
            }
        }
    }
    rs.threads[me].clock.bump(me);
    let clock = rs.threads[me].clock.clone();
    let st = rs.races.entry(id).or_default();
    st.last_write = Some((me, clock));
    st.reads.clear();
    Ok(())
}
