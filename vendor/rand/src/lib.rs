//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API used by this workspace:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] / [`Rng::gen`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic per seed but deliberately *not* bit-compatible with
//! upstream `rand`'s ChaCha12-based `StdRng`; nothing in-tree depends on
//! the exact stream, only on seed-determinism.

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A random number generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array upstream; mirrored here).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (the only constructor used in-tree).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the whole domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// `u64` → uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                let pick = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                self.start + pick as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u128 + 1;
                let pick = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                start + pick as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (self.start as i128 + pick as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let pick = (u128::from(rng.next_u64()).wrapping_mul(span)) >> 64;
                (start as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up onto the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Draw a value of `T` from its full domain.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded PRNG: xoshiro256++.
    ///
    /// Deterministic per seed; not bit-compatible with upstream `rand`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(900u32..=999);
            assert!((900..=999).contains(&w));
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_bool_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
