//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API used by the benches in
//! `crates/bench/benches`: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`](BenchmarkGroup), [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each closure for
//! a short warm-up followed by `sample_size` timed samples and prints the
//! per-iteration mean and min. CI compiles benches with
//! `cargo bench --no-run`; numbers printed here are indicative only.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
    }

    /// Close the group (upstream finalizes reports here; a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up: one untimed run, also used to size the timed samples so
    // that fast routines are measured over many iterations.
    let mut warmup = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warmup);
    let per_iter = warmup.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        total += per;
        min = min.min(per);
    }
    let mean = total / sample_size as u32;
    println!("bench {label:<40} mean {mean:>12?}  min {min:>12?}  ({sample_size} samples x {iters} iters)");
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| std::hint::black_box(2u64 + 2));
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
        });
        group.finish();
        // Warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }

    criterion_group!(smoke, run_one);

    fn run_one(c: &mut Criterion) {
        c.bench_function("inline", |b| b.iter(|| std::hint::black_box(1)));
    }

    #[test]
    fn macro_generated_group_is_callable() {
        smoke();
    }
}
