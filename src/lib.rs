//! Meta-crate for the QAEC workspace: re-exports every layer and hosts
//! the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`).
//!
//! See the [`qaec`] crate for the checker itself, and the repository
//! README for the full tour.

pub use qaec;
pub use qaec_circuit as circuit;
pub use qaec_dmsim as dmsim;
pub use qaec_math as math;
pub use qaec_tdd as tdd;
pub use qaec_tensornet as tensornet;
