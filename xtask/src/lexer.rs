//! A minimal line-oriented Rust lexer: splits each source line into its code
//! text (strings replaced by `""`/`''` placeholders, comments removed) and
//! its comment text (line + block comment bodies). Rules match orderings,
//! `unsafe`, `.lock()` etc. against code text only, and look for
//! justification markers (`// ordering:`, `// SAFETY:`, …) in comment text
//! only — so a string literal mentioning `unsafe` or a commented-out lock
//! can never confuse a rule.

/// One source line after lexing.
pub struct Line {
    pub code: String,
    pub comment: String,
}

enum State {
    Normal,
    Block(u32),
    Str,
    RawStr(usize),
}

pub fn split_code_and_comments(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Normal;
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(bytes[i]);
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == '\\' {
                        i += 2; // skip the escaped char (may run past EOL: fine)
                    } else if bytes[i] == '"' {
                        code.push_str("\"\"");
                        state = State::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == '"'
                        && bytes[i + 1..].len() >= hashes
                        && bytes[i + 1..i + 1 + hashes].iter().all(|&c| c == '#')
                    {
                        code.push_str("\"\"");
                        state = State::Normal;
                        i += 1 + hashes;
                    } else {
                        i += 1;
                    }
                }
                State::Normal => {
                    let c = bytes[i];
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        comment.push_str(&raw[char_offset(raw, i)..]);
                        i = bytes.len();
                    } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&bytes, i)
                        && matches!(bytes.get(i + 1), Some('"') | Some('#'))
                    {
                        // raw string r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // char literal or lifetime; only consume as a char
                        // literal when it closes ('x' or '\x')
                        if bytes.get(i + 1) == Some(&'\\') {
                            // escaped char literal: find closing quote
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                            code.push_str("''");
                            i = (j + 1).min(bytes.len());
                        } else if bytes.get(i + 2) == Some(&'\'') {
                            code.push_str("''");
                            i += 3;
                        } else {
                            // lifetime ('a) — keep as code
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A string continuing across lines keeps its state; reset Str at EOL
        // is wrong for multiline strings, so leave `state` as-is.
        out.push(Line { code, comment });
    }
    out
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

fn char_offset(s: &str, nth_char: usize) -> usize {
    s.char_indices().nth(nth_char).map_or(s.len(), |(o, _)| o)
}
