//! Source discovery: which crates and files the lint scans.
//!
//! The scan set is *production code only* — every `.rs` file under
//! `crates/*/src`, skipping per-crate `tests/`, `benches/`, `examples/`
//! and `target/` directories. Discovery is its own unit (rather than a
//! walk inlined in `main`) so a regression test can pin the crate set:
//! a new workspace crate that silently fell out of the scan would
//! otherwise ship concurrency code the four rules never saw.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Walk up from the current directory to the workspace root (the
/// directory holding a `crates/` subdirectory), so the lint works from
/// any cwd.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root (directory with crates/) not found above cwd");
        }
    }
}

/// Every production `.rs` file under `<root>/crates`, sorted for
/// deterministic reports.
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_sources(&root.join("crates"), &mut files);
    files.sort();
    files
}

/// The discovered sources grouped by crate: `package.name` from each
/// `crates/*/Cargo.toml` mapped to the files the lint will scan for it.
/// Crates whose manifest cannot be parsed fall back to the directory
/// name, so a malformed manifest cannot hide a crate from the report.
pub fn crate_sources(root: &Path) -> BTreeMap<String, Vec<PathBuf>> {
    let mut by_crate: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    let crates = root.join("crates");
    for file in workspace_sources(root) {
        let Ok(rel) = file.strip_prefix(&crates) else {
            continue;
        };
        let Some(dir) = rel.components().next() else {
            continue;
        };
        let dir = dir.as_os_str().to_string_lossy().into_owned();
        let name = package_name(&crates.join(&dir).join("Cargo.toml")).unwrap_or(dir);
        by_crate.entry(name).or_default().push(file);
    }
    by_crate
}

/// Minimal manifest read: the first `name = "..."` line after
/// `[package]`. Enough for this workspace's hand-written manifests; no
/// toml dependency, in the spirit of the vendored stand-ins.
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            // Production code only: skip per-crate integration tests,
            // benches and examples (they have no lock-free protocol code).
            if matches!(name, "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workspace_crate_is_discovered() {
        let root = workspace_root();
        let by_crate = crate_sources(&root);
        let found: Vec<&str> = by_crate.keys().map(String::as_str).collect();
        // The full production crate set. A new `crates/` member must be
        // added here — this test failing on a fresh crate is the point:
        // it proves discovery saw it (then extend this list), while a
        // crate *missing* from `found` means the lint is skipping real
        // protocol code.
        let expected = [
            "qaec",
            "qaec-bench",
            "qaec-circuit",
            "qaec-cli",
            "qaec-dmsim",
            "qaec-math",
            "qaec-mpo",
            "qaec-tdd",
            "qaec-tensornet",
        ];
        assert_eq!(found, expected, "discovered crate set drifted");
        for (name, files) in &by_crate {
            assert!(!files.is_empty(), "{name} discovered with no sources");
        }
    }

    #[test]
    fn mpo_backend_sources_are_in_scope() {
        let root = workspace_root();
        let by_crate = crate_sources(&root);
        let mpo = by_crate.get("qaec-mpo").expect("qaec-mpo discovered");
        let has = |tail: &str| mpo.iter().any(|p| p.ends_with(tail));
        assert!(has("src/lib.rs"), "qaec-mpo lib.rs missing: {mpo:?}");
        assert!(has("src/svd.rs"), "qaec-mpo svd.rs missing: {mpo:?}");
        assert!(has("src/plan.rs"), "qaec-mpo plan.rs missing: {mpo:?}");
    }

    #[test]
    fn out_of_scope_directories_stay_out() {
        let root = workspace_root();
        for file in workspace_sources(&root) {
            let rel = file.strip_prefix(&root).unwrap_or(&file);
            let s = rel.to_string_lossy();
            assert!(rel.starts_with("crates"), "outside crates/: {s}");
            for skipped in ["/tests/", "/benches/", "/examples/", "/target/"] {
                assert!(!s.contains(skipped), "out-of-scope file scanned: {s}");
            }
            assert!(s.ends_with(".rs"), "non-Rust file scanned: {s}");
        }
    }

    #[test]
    fn package_name_reads_the_package_table_only() {
        let dir = std::env::temp_dir().join("qaec-xtask-discovery-test");
        std::fs::create_dir_all(&dir).expect("tempdir");
        let manifest = dir.join("Cargo.toml");
        std::fs::write(
            &manifest,
            "[dependencies]\nname-like = \"1\"\n[package]\nname = \"demo-crate\"\n",
        )
        .expect("write manifest");
        assert_eq!(package_name(&manifest).as_deref(), Some("demo-crate"));
        std::fs::remove_file(&manifest).ok();
    }
}
