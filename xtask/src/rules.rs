//! The four lint rules. All work on the lexed [`Line`]s: `code` is the line
//! with strings blanked and comments stripped, `comment` is the comment text.

use std::path::Path;

use crate::lexer::Line;

/// How many preceding lines a justification comment may sit above its site
/// (multi-line call expressions push the ordering name a few lines below the
/// comment that covers the statement).
const JUSTIFY_WINDOW: usize = 4;

const MEMORY_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

fn push(out: &mut Vec<String>, path: &Path, line_idx: usize, rule: &str, msg: &str) {
    out.push(format!(
        "{}:{}: [{rule}] {msg}",
        path.display(),
        line_idx + 1
    ));
}

/// Does any of the `JUSTIFY_WINDOW` lines ending at `idx` carry `marker` in
/// its comment text?
fn justified(lines: &[Line], idx: usize, marker: &str) -> bool {
    let lo = idx.saturating_sub(JUSTIFY_WINDOW);
    lines[lo..=idx].iter().any(|l| l.comment.contains(marker))
}

// ---------------------------------------------------------------------------
// Rule 1: ordering-comment
// ---------------------------------------------------------------------------

pub fn check_ordering_comments(path: &Path, lines: &[Line], out: &mut Vec<String>) {
    for (idx, line) in lines.iter().enumerate() {
        let has_ordering = MEMORY_ORDERINGS.iter().any(|o| line.code.contains(o));
        if !has_ordering {
            continue;
        }
        // `use` / re-export lines name the type, not an operation.
        let trimmed = line.code.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        if !justified(lines, idx, "ordering:") {
            push(
                out,
                path,
                idx,
                "ordering-comment",
                "atomic operation names a memory ordering without an adjacent `// ordering:` justification",
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: safety-comment
// ---------------------------------------------------------------------------

pub fn check_safety_comments(path: &Path, lines: &[Line], out: &mut Vec<String>) {
    for (idx, line) in lines.iter().enumerate() {
        if !has_unsafe_token(&line.code) {
            continue;
        }
        if !justified(lines, idx, "SAFETY:") {
            push(
                out,
                path,
                idx,
                "safety-comment",
                "`unsafe` without an adjacent `// SAFETY:` comment",
            );
        }
    }
}

fn has_unsafe_token(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0 || {
            let c = rest[..pos].chars().next_back().unwrap();
            !(c.is_alphanumeric() || c == '_')
        };
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

// ---------------------------------------------------------------------------
// Rule 3: two-guard
// ---------------------------------------------------------------------------

/// Lexical lock-overlap detection: inside each function body, a `.lock(`
/// whose result is bound by a `let` marks its guard live until the binding's
/// block closes or an explicit `drop(<name>)`. Any further `.lock(` while a
/// guard is live is a violation unless the line (or the `JUSTIFY_WINDOW`
/// above it) carries `// lock-order:`.
pub fn check_two_guard(path: &Path, lines: &[Line], out: &mut Vec<String>) {
    struct Guard {
        name: String,
        depth: i32,
    }
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;

        // Explicit early drops release the guard.
        for g in guard_drops(code) {
            guards.retain(|held| held.name != g);
        }

        if code.contains(".lock(") {
            if let Some(live) = guards.first() {
                if !justified(lines, idx, "lock-order:") {
                    push(
                        out,
                        path,
                        idx,
                        "two-guard",
                        &format!(
                            "takes a lock while guard `{}` is still live — scope the first guard or justify with `// lock-order:`",
                            live.name
                        ),
                    );
                }
            }
            if let Some(name) = guard_binding(code) {
                guards.push(Guard { name, depth });
            }
        }

        // Track brace depth after processing the line's lock events; guards
        // bound on this line live in the block that was open at `.lock(`.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    guards.retain(|g| g.depth < depth + 1 && g.depth <= depth);
                }
                _ => {}
            }
        }
    }
}

/// `let <name> = … .lock( …` (also `let mut <name>`) — the guard outlives the
/// statement. Unbound uses (`queue.lock().unwrap().push(x)`) drop at the end
/// of the statement, as do bindings that extract a value through the guard
/// (`let n = m.lock().unwrap().len();`): only chains ending right after
/// `.unwrap()` / `.expect(…)` bind the guard itself.
fn guard_binding(code: &str) -> Option<String> {
    let let_pos = find_token(code, "let")?;
    let lock_pos = code.find(".lock(")?;
    if lock_pos < let_pos {
        return None;
    }
    if let Some(mut after) = skip_to_close(&code[lock_pos + ".lock(".len()..]) {
        loop {
            let t = after.trim_start();
            if let Some(r) = t.strip_prefix(".unwrap(") {
                match skip_to_close(r) {
                    Some(next) => after = next,
                    None => break,
                }
            } else if let Some(r) = t.strip_prefix(".expect(") {
                match skip_to_close(r) {
                    Some(next) => after = next,
                    None => break,
                }
            } else {
                after = t;
                break;
            }
        }
        let ok_tail = after.is_empty()
            || after.starts_with(';')
            || after.starts_with('?')
            || after.starts_with('{')
            || after.starts_with("else");
        if !ok_tail {
            return None;
        }
    }
    // (an unclosed `.lock(` spanning lines is treated as a guard binding —
    // conservative for the two-guard rule)
    let mut rest = code[let_pos + 3..].trim_start();
    if let Some(stripped) = rest.strip_prefix("mut ") {
        rest = stripped.trim_start();
    }
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some(name)
    }
}

fn guard_drops(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(pos) = rest.find("drop(") {
        let token_ok = pos == 0 || {
            let c = rest[..pos].chars().next_back().unwrap();
            !(c.is_alphanumeric() || c == '_' || c == '.')
        };
        let inner = &rest[pos + "drop(".len()..];
        if token_ok {
            let name: String = inner
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.push(name);
            }
        }
        rest = inner;
    }
    out
}

/// `s` starts right after an opening `(`; return the text after its matching
/// close paren, or `None` if the call spans further lines.
fn skip_to_close(s: &str) -> Option<&str> {
    let mut depth = 1u32;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[i + 1..]);
                }
            }
            _ => {}
        }
    }
    None
}

fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let abs = start + pos;
        let before_ok = abs == 0 || {
            let c = code[..abs].chars().next_back().unwrap();
            !(c.is_alphanumeric() || c == '_')
        };
        let after = &code[abs + token.len()..];
        let after_ok = after
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_'));
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + token.len();
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 4: hot-region
// ---------------------------------------------------------------------------

const HOT_FORBIDDEN: [&str; 12] = [
    "Instant::now",
    "SystemTime::now",
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
    ".to_vec(",
    ".to_owned(",
    ".to_string(",
];

/// Enforce `// hot-region: begin(name)` / `// hot-region: end(name)` blocks:
/// balanced markers, and none of the forbidden timing/allocation calls
/// inside. The markers wrap the per-node `cont`/`add` recursion cores whose
/// per-call cost budget excludes clocks and heap traffic.
pub fn check_hot_regions(path: &Path, lines: &[Line], out: &mut Vec<String>) {
    let mut open: Option<(String, usize)> = None;
    for (idx, line) in lines.iter().enumerate() {
        if let Some(name) = hot_marker(&line.comment, "begin") {
            if let Some((prev, prev_idx)) = &open {
                push(
                    out,
                    path,
                    idx,
                    "hot-region",
                    &format!(
                        "begin({name}) while begin({prev}) at line {} is still open",
                        prev_idx + 1
                    ),
                );
            }
            open = Some((name, idx));
            continue;
        }
        if let Some(name) = hot_marker(&line.comment, "end") {
            match open.take() {
                Some((begun, _)) if begun == name => {}
                Some((begun, _)) => push(
                    out,
                    path,
                    idx,
                    "hot-region",
                    &format!("end({name}) does not match open begin({begun})"),
                ),
                None => push(
                    out,
                    path,
                    idx,
                    "hot-region",
                    &format!("end({name}) without begin"),
                ),
            }
            continue;
        }
        if let Some((name, _)) = open.as_ref() {
            for forbidden in HOT_FORBIDDEN {
                if line.code.contains(forbidden) {
                    push(
                        out,
                        path,
                        idx,
                        "hot-region",
                        &format!("`{forbidden}` inside hot region `{name}` (no clocks or heap allocation in the contraction core)"),
                    );
                }
            }
        }
    }
    if let Some((name, idx)) = open {
        push(
            out,
            path,
            idx,
            "hot-region",
            &format!("begin({name}) is never closed"),
        );
    }
}

fn hot_marker(comment: &str, kind: &str) -> Option<String> {
    let pos = comment.find("hot-region:")?;
    let rest = comment[pos + "hot-region:".len()..].trim_start();
    let rest = rest.strip_prefix(kind)?;
    let rest = rest.trim_start().strip_prefix('(')?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::split_code_and_comments;
    use std::path::PathBuf;

    fn run(rule: fn(&Path, &[Line], &mut Vec<String>), src: &str) -> Vec<String> {
        let lines = split_code_and_comments(src);
        let mut out = Vec::new();
        rule(&PathBuf::from("test.rs"), &lines, &mut out);
        out
    }

    #[test]
    fn ordering_rule_flags_bare_and_accepts_justified() {
        let bad = "self.flag.store(true, Ordering::Release);\n";
        assert_eq!(run(check_ordering_comments, bad).len(), 1);
        let good = "// ordering: Release publishes the init done above.\nself.flag.store(true, Ordering::Release);\n";
        assert!(run(check_ordering_comments, good).is_empty());
        let trailing = "self.hits.fetch_add(1, Ordering::Relaxed); // ordering: stat counter\n";
        assert!(run(check_ordering_comments, trailing).is_empty());
        let use_line = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        assert!(run(check_ordering_comments, use_line).is_empty());
        let cmp = "if a.cmp(&b) == Ordering::Less {}\n";
        assert!(run(check_ordering_comments, cmp).is_empty());
        let in_string = "println!(\"Ordering::Relaxed\");\n";
        assert!(run(check_ordering_comments, in_string).is_empty());
    }

    #[test]
    fn safety_rule_flags_bare_and_accepts_justified() {
        let bad = "let v = unsafe { slot.assume_init_ref() };\n";
        assert_eq!(run(check_safety_comments, bad).len(), 1);
        let good = "// SAFETY: slot was initialised by the push that published len.\nlet v = unsafe { slot.assume_init_ref() };\n";
        assert!(run(check_safety_comments, good).is_empty());
        let ident = "let unsafe_count = 3;\n";
        assert!(run(check_safety_comments, ident).is_empty());
        let in_comment = "// this is not unsafe at all\nlet x = 1;\n";
        assert!(run(check_safety_comments, in_comment).is_empty());
    }

    #[test]
    fn two_guard_rule_detects_overlap_and_scoping() {
        let bad = "fn f() {\n    let a = m1.lock().unwrap();\n    let b = m2.lock().unwrap();\n}\n";
        assert_eq!(run(check_two_guard, bad).len(), 1);
        let scoped = "fn f() {\n    {\n        let a = m1.lock().unwrap();\n    }\n    let b = m2.lock().unwrap();\n}\n";
        assert!(run(check_two_guard, scoped).is_empty());
        let dropped = "fn f() {\n    let a = m1.lock().unwrap();\n    drop(a);\n    let b = m2.lock().unwrap();\n}\n";
        assert!(run(check_two_guard, dropped).is_empty());
        let temp =
            "fn f() {\n    m1.lock().unwrap().push(1);\n    m2.lock().unwrap().push(2);\n}\n";
        assert!(run(check_two_guard, temp).is_empty());
        let deref =
            "fn f() {\n    let n = m1.lock().unwrap().len();\n    let b = m2.lock().unwrap();\n}\n";
        assert!(
            run(check_two_guard, deref).is_empty(),
            "value extraction is not a guard binding"
        );
        let cmp = "fn f() {\n    let heaviest = mass > slot.lock().expect(\"p\").mass;\n    let g = m2.lock().unwrap();\n}\n";
        assert!(run(check_two_guard, cmp).is_empty());
        let waived = "fn f() {\n    let a = m1.lock().unwrap();\n    // lock-order: m1 always precedes m2 (documented in ARCHITECTURE.md)\n    let b = m2.lock().unwrap();\n}\n";
        assert!(run(check_two_guard, waived).is_empty());
    }

    #[test]
    fn hot_region_rule_flags_alloc_and_unbalanced() {
        let bad = "// hot-region: begin(cont)\nlet v = Vec::new();\n// hot-region: end(cont)\n";
        assert_eq!(run(check_hot_regions, bad).len(), 1);
        let clock =
            "// hot-region: begin(cont)\nlet t = Instant::now();\n// hot-region: end(cont)\n";
        assert_eq!(run(check_hot_regions, clock).len(), 1);
        let good = "// hot-region: begin(cont)\nlet x = a + b;\n// hot-region: end(cont)\n";
        assert!(run(check_hot_regions, good).is_empty());
        let unbalanced = "// hot-region: begin(cont)\nlet x = 1;\n";
        assert_eq!(run(check_hot_regions, unbalanced).len(), 1);
        let mismatched = "// hot-region: begin(cont)\n// hot-region: end(add)\n";
        assert_eq!(run(check_hot_regions, mismatched).len(), 1);
    }
}
