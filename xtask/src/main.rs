//! `qaec-xtask` — repo-specific static analysis for the QAEC workspace.
//!
//! `cargo run -p qaec-xtask -- lint` scans every `crates/*/src/**/*.rs` file
//! (production code; vendored stand-ins and integration tests are out of
//! scope) and enforces four concurrency-hygiene invariants that rustc and
//! clippy cannot express:
//!
//! 1. **ordering-comment** — every atomic load/store/RMW that names a memory
//!    ordering (`Ordering::Relaxed` … `Ordering::SeqCst`) carries an adjacent
//!    `// ordering:` comment justifying the claim it relies on.
//! 2. **safety-comment** — every `unsafe` block / fn / impl carries an
//!    adjacent `// SAFETY:` comment (mirrors
//!    `clippy::undocumented_unsafe_blocks`, but also active for code clippy
//!    skips, and enforced by a build-free scanner).
//! 3. **two-guard** — no `MutexGuard` bound by `let` may be live when another
//!    `.lock()` is taken in the same function (lock-order discipline for the
//!    stripe locks). Justified exceptions carry `// lock-order:`.
//! 4. **hot-region** — between `// hot-region: begin(name)` and
//!    `// hot-region: end(name)` markers, no `Instant::now()` /
//!    `SystemTime::now()` and no obvious heap allocation may appear (the
//!    marked regions are the per-node `cont`/`add` recursion cores).
//!
//! The scanner is hand-rolled (no syn, no external deps, in the spirit of the
//! vendored stand-ins): a line-oriented lexer strips strings and comments so
//! rules match code text and comment text separately.

use std::path::PathBuf;
use std::process::ExitCode;

mod discovery;
mod lexer;
mod rules;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.get(1).map(String::as_str)),
        _ => {
            eprintln!("usage: cargo run -p qaec-xtask -- lint [root]");
            ExitCode::from(2)
        }
    }
}

fn lint(root: Option<&str>) -> ExitCode {
    let root = root
        .map(PathBuf::from)
        .unwrap_or_else(discovery::workspace_root);
    let files = discovery::workspace_sources(&root);
    if files.is_empty() {
        eprintln!("qaec-xtask: no sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let mut violations = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("qaec-xtask: cannot read {}: {err}", path.display());
                return ExitCode::from(2);
            }
        };
        let lines = lexer::split_code_and_comments(&text);
        let rel = path.strip_prefix(&root).unwrap_or(path);
        rules::check_ordering_comments(rel, &lines, &mut violations);
        rules::check_safety_comments(rel, &lines, &mut violations);
        rules::check_two_guard(rel, &lines, &mut violations);
        rules::check_hot_regions(rel, &lines, &mut violations);
    }

    if violations.is_empty() {
        println!(
            "qaec-xtask lint: {} files across {} crates clean",
            files.len(),
            discovery::crate_sources(&root).len()
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "qaec-xtask lint: {} violation(s) in {} files",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}
