//! The compile-once session API (`Checker` / `CompiledCheck`) against
//! the one-shot free functions it wraps.
//!
//! The contract under test: compiling once and querying many times must
//! change *nothing* but the cost — per-query fidelities and verdicts
//! match the one-shot path (bit for bit wherever the engine guarantees
//! determinism), ε-sweeps are monotone, noise sweeps re-instantiate the
//! compiled plan without drifting from cold re-checks, the warm store's
//! statistics are epoch-fenced per query, and the wrappers keep the
//! pinned error precedence.

use qaec::{
    check_equivalence, jamiolkowski_fidelity, AlgorithmChoice, CheckOptions, Checker, QaecError,
    SharedTableMode, Verdict,
};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel, Operation};

/// The shared fixture: a QFT with a few depolarizing sites — small
/// enough for exhaustive Algorithm I, wide enough for Algorithm II.
fn fixture(n: usize, sites: usize) -> (Circuit, Circuit) {
    let ideal = qft(n, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        sites,
        0xC0FFEE + n as u64,
    );
    (ideal, noisy)
}

fn options(algorithm: AlgorithmChoice, threads: usize, shared: SharedTableMode) -> CheckOptions {
    CheckOptions {
        algorithm,
        threads,
        shared_table: shared,
        ..CheckOptions::default()
    }
}

/// The same noisy circuit with every noise channel re-parameterised to
/// strength `p` — the cold-path comparator for `sweep_noise`.
fn reparameterise(noisy: &Circuit, p: f64) -> Circuit {
    let mut out = Circuit::new(noisy.n_qubits());
    for instr in noisy.iter() {
        match &instr.op {
            Operation::Gate(g) => {
                out.gate(*g, &instr.qubits);
            }
            Operation::Noise(ch) => {
                let swept = ch.with_strength(p).expect("single-parameter channel");
                out.noise(swept, &instr.qubits);
            }
        }
    }
    out
}

/// Compile-once / query-many returns the one-shot values: bitwise
/// wherever the engine guarantees determinism (sequential runs; any
/// shared-store run — canonical interning makes warm reuse
/// value-transparent), and within the interning tolerance for the one
/// configuration without that guarantee (parallel private stores, whose
/// per-worker interning history is scheduler-dependent).
#[test]
fn compiled_fidelity_matches_one_shot_across_backends() {
    let (ideal, noisy) = fixture(3, 4);
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        for threads in [1usize, 4] {
            for shared in [SharedTableMode::On, SharedTableMode::Off] {
                let opts = options(algorithm, threads, shared);
                let one_shot = jamiolkowski_fidelity(&ideal, &noisy, &opts).expect("one-shot");
                let mut compiled = Checker::new(&ideal, &noisy)
                    .options(opts.clone())
                    .compile()
                    .expect("compile");
                let first = compiled.fidelity().expect("query 1");
                let second = compiled.fidelity().expect("query 2 (cached)");
                let label = format!("{algorithm:?} t{threads} {shared:?}");
                assert_eq!(
                    first.to_bits(),
                    second.to_bits(),
                    "{label}: repeated queries must be stable"
                );
                // Parallel Algorithm I on private stores is the one
                // configuration whose exact sum is only
                // tolerance-reproducible (per-worker interning history
                // depends on scheduling) — everywhere else the session
                // must match the one-shot value bit for bit.
                let bit_deterministic = !(algorithm == AlgorithmChoice::AlgorithmI
                    && threads > 1
                    && shared == SharedTableMode::Off);
                if bit_deterministic {
                    assert_eq!(
                        first.to_bits(),
                        one_shot.to_bits(),
                        "{label}: compiled vs one-shot drifted: {first} vs {one_shot}"
                    );
                } else {
                    assert!(
                        (first - one_shot).abs() < 1e-9,
                        "{label}: {first} vs {one_shot}"
                    );
                }
            }
        }
    }
}

/// `check` on a fresh session equals `check_equivalence` (verdict and
/// bounds), and `verdict` keeps agreeing at every ε once answers come
/// from the cached interval.
#[test]
fn compiled_check_and_verdict_match_one_shot() {
    let (ideal, noisy) = fixture(3, 4);
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        let opts = options(algorithm, 1, SharedTableMode::Auto);
        for eps in [0.5, 0.01, 1e-4, 0.0] {
            let one_shot = check_equivalence(&ideal, &noisy, eps, &opts).expect("one-shot");
            // Fresh compile: the first query is exactly the one-shot run.
            let mut fresh = Checker::new(&ideal, &noisy)
                .options(opts.clone())
                .compile()
                .expect("compile");
            let report = fresh.check(eps).expect("check");
            assert_eq!(report.verdict, one_shot.verdict, "{algorithm:?} ε={eps}");
            assert_eq!(
                report.fidelity_bounds.0.to_bits(),
                one_shot.fidelity_bounds.0.to_bits(),
                "{algorithm:?} ε={eps}: lower bound"
            );
            assert_eq!(
                report.fidelity_bounds.1.to_bits(),
                one_shot.fidelity_bounds.1.to_bits(),
                "{algorithm:?} ε={eps}: upper bound"
            );
            assert_eq!(report.terms_computed, one_shot.terms_computed);
        }
        // One long-lived session across all thresholds: cache-served
        // verdicts must still agree with one-shot calls.
        let mut session = Checker::new(&ideal, &noisy)
            .options(opts.clone())
            .compile()
            .expect("compile");
        for eps in [0.5, 0.01, 1e-4, 0.0] {
            let one_shot = check_equivalence(&ideal, &noisy, eps, &opts).expect("one-shot");
            assert_eq!(
                session.verdict(eps).expect("verdict"),
                one_shot.verdict,
                "{algorithm:?} cached ε={eps}"
            );
        }
    }
}

/// ε-sweep verdicts are monotone (a larger tolerance can only flip
/// NotEquivalent → Equivalent) and consistent with the exact fidelity.
#[test]
fn epsilon_sweep_is_monotone_in_epsilon() {
    let (ideal, noisy) = fixture(3, 4);
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        let mut compiled = Checker::new(&ideal, &noisy)
            .options(options(algorithm, 1, SharedTableMode::Auto))
            .compile()
            .expect("compile");
        let fidelity = compiled.fidelity().expect("fidelity");
        let epsilons = [0.0, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0];
        let points = compiled.sweep_epsilon(&epsilons).expect("sweep");
        assert_eq!(points.len(), epsilons.len());
        let mut seen_equivalent = false;
        for point in &points {
            if seen_equivalent {
                assert_eq!(
                    point.verdict,
                    Verdict::Equivalent,
                    "{algorithm:?}: verdicts must not flip back at larger ε"
                );
            }
            seen_equivalent |= point.verdict == Verdict::Equivalent;
            assert_eq!(
                point.verdict,
                Verdict::decide(fidelity, point.epsilon),
                "{algorithm:?} ε={}: sweep must agree with the exact fidelity",
                point.epsilon
            );
            // After the exact evaluation the bounds are a point.
            assert!(point.fidelity_bounds.1 <= point.fidelity_bounds.0);
        }
        assert!(seen_equivalent, "ε = 1 accepts anything with F > 0");
    }
}

/// `sweep_noise` re-instantiates Kraus weights on the compiled plan:
/// every point must match a cold one-shot check of the re-parameterised
/// pair bit for bit, and the whole sweep must build no new plan.
#[test]
fn noise_sweep_matches_cold_checks_bitwise() {
    let (ideal, noisy) = fixture(3, 3);
    let strengths = [0.999, 0.995, 0.99, 0.95];
    let eps = 0.01;
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        for threads in [1usize, 4] {
            let opts = options(algorithm, threads, SharedTableMode::Auto);
            let compiled = Checker::new(&ideal, &noisy)
                .options(opts.clone())
                .compile()
                .expect("compile");
            // (The "plan built exactly once per compile" counter is
            // asserted in the single-flow bench_smoke harness —
            // `qaec_tensornet::plan::build_count()` is process-global and
            // this test binary runs tests concurrently.)
            let points = compiled.sweep_noise(eps, &strengths).expect("sweep");
            assert_eq!(points.len(), strengths.len());
            for (point, &p) in points.iter().zip(&strengths) {
                let cold_noisy = reparameterise(&noisy, p);
                let cold_f = jamiolkowski_fidelity(&ideal, &cold_noisy, &opts).expect("cold");
                let cold_verdict = check_equivalence(&ideal, &cold_noisy, eps, &opts)
                    .expect("cold check")
                    .verdict;
                // Exhaustive sums on the shared store (Auto resolves
                // shared for alg2 always, and for alg1 at t4) are
                // bit-deterministic; the private sequential alg1 path is
                // the identical code path either way.
                let bit_deterministic = algorithm == AlgorithmChoice::AlgorithmII || threads == 1;
                if bit_deterministic {
                    assert_eq!(
                        point.fidelity.to_bits(),
                        cold_f.to_bits(),
                        "{algorithm:?} t{threads} p={p}: {} vs cold {cold_f}",
                        point.fidelity
                    );
                } else {
                    assert!((point.fidelity - cold_f).abs() < 1e-9);
                }
                assert_eq!(
                    point.verdict, cold_verdict,
                    "{algorithm:?} t{threads} p={p}"
                );
            }
            // Lighter noise ⇒ higher fidelity: strengths descend, so
            // fidelities must descend too (depolarizing p = no-error
            // probability).
            for pair in points.windows(2) {
                assert!(
                    pair[0].fidelity >= pair[1].fidelity,
                    "{algorithm:?}: fidelity must fall as noise grows"
                );
            }
        }
    }
}

/// Store-reuse statistics are epoch-fenced: a repeated sweep point on
/// the warm store re-finds everything (≈no new nodes) instead of
/// re-reporting the session's cumulative allocations.
#[test]
fn warm_store_stats_are_epoch_fenced_per_point() {
    let (ideal, noisy) = fixture(4, 3);
    // Algorithm II with the shared store at one worker: deterministic
    // and warm across the whole batch. Lanes off: the epoch fencing
    // under test is a property of the scalar warm-store path (a lane
    // batch contracts on its own private manager and reports the
    // batch's allocations instead).
    let compiled = Checker::new(&ideal, &noisy)
        .options(CheckOptions {
            sweep_lanes: 1,
            ..options(AlgorithmChoice::AlgorithmII, 1, SharedTableMode::On)
        })
        .compile()
        .expect("compile");
    // The same strength twice: point 2 contracts an identical network
    // over a store already holding every node point 1 interned.
    let points = compiled.sweep_noise(0.01, &[0.99, 0.99]).expect("sweep");
    let (first, second) = (&points[0], &points[1]);
    assert_eq!(first.fidelity.to_bits(), second.fidelity.to_bits());
    assert!(
        first.stats.nodes_created > 0,
        "point 1 allocates the diagrams: {:?}",
        first.stats
    );
    assert_eq!(
        second.stats.nodes_created, 0,
        "point 2 must re-find, not re-allocate (epoch fencing): {:?}",
        second.stats
    );
    assert!(
        second.stats.unique_hits > 0,
        "point 2's work shows up as unique-table hits: {:?}",
        second.stats
    );
}

/// The free functions are wrappers over a single-query session: both
/// must reject invalid inputs with the pinned precedence (width
/// mismatch > noisy ideal > bad ε), whichever algorithm is forced.
#[test]
fn wrapper_and_session_error_precedence_agree() {
    let two = Circuit::new(2);
    let three = Circuit::new(3);
    let mut noisy_ideal = Circuit::new(2);
    noisy_ideal.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        let opts = options(algorithm, 1, SharedTableMode::Auto);
        // Width mismatch beats a bad epsilon, in the wrapper and at
        // session compile time.
        assert_eq!(
            check_equivalence(&two, &three, 1.5, &opts).unwrap_err(),
            QaecError::WidthMismatch { ideal: 2, noisy: 3 },
            "{algorithm:?}"
        );
        assert_eq!(
            Checker::new(&two, &three)
                .options(opts.clone())
                .compile()
                .unwrap_err(),
            QaecError::WidthMismatch { ideal: 2, noisy: 3 },
            "{algorithm:?}"
        );
        // A noisy ideal beats a bad epsilon.
        assert_eq!(
            check_equivalence(&noisy_ideal, &two, 1.5, &opts).unwrap_err(),
            QaecError::IdealNotUnitary,
            "{algorithm:?}"
        );
        assert_eq!(
            Checker::new(&noisy_ideal, &two)
                .options(opts.clone())
                .compile()
                .unwrap_err(),
            QaecError::IdealNotUnitary,
            "{algorithm:?}"
        );
        // With valid circuits the epsilon error surfaces at query time.
        assert_eq!(
            check_equivalence(&two, &two, 1.5, &opts).unwrap_err(),
            QaecError::InvalidEpsilon { value: 1.5 },
            "{algorithm:?}"
        );
        let mut compiled = Checker::new(&two, &two)
            .options(opts.clone())
            .compile()
            .expect("valid pair compiles");
        assert_eq!(
            compiled.verdict(1.5).unwrap_err(),
            QaecError::InvalidEpsilon { value: 1.5 },
            "{algorithm:?}"
        );
        assert_eq!(
            compiled.sweep_epsilon(&[0.1, 1.5]).unwrap_err(),
            QaecError::InvalidEpsilon { value: 1.5 },
            "{algorithm:?}: sweeps validate every threshold up front"
        );
    }
}

/// Noise sweeps reject what they cannot re-instantiate — multi-parameter
/// channels, out-of-range strengths, mismatched point shapes — before
/// doing any work.
#[test]
fn noise_sweep_rejects_unsupported_points() {
    let mut noisy = Circuit::new(2);
    noisy.h(0).noise(
        NoiseChannel::Pauli {
            pi: 0.9,
            px: 0.05,
            py: 0.03,
            pz: 0.02,
        },
        &[0],
    );
    let compiled = Checker::new(&noisy.ideal(), &noisy)
        .compile()
        .expect("compile");
    // A Pauli site has no single scalar strength.
    assert!(matches!(
        compiled.sweep_noise(0.1, &[0.5]).unwrap_err(),
        QaecError::NoiseSweepUnsupported { .. }
    ));
    // Explicit channels work as long as shape and arity match …
    let ok = compiled.sweep_noise_channels(
        0.1,
        &[vec![NoiseChannel::Pauli {
            pi: 0.8,
            px: 0.1,
            py: 0.05,
            pz: 0.05,
        }]],
    );
    assert!(ok.is_ok(), "{ok:?}");
    // … and are rejected otherwise.
    assert!(matches!(
        compiled.sweep_noise_channels(0.1, &[vec![]]).unwrap_err(),
        QaecError::NoiseSweepUnsupported { .. }
    ));
    assert!(matches!(
        compiled
            .sweep_noise_channels(0.1, &[vec![NoiseChannel::TwoQubitDepolarizing { p: 0.9 }]])
            .unwrap_err(),
        QaecError::NoiseSweepUnsupported { .. }
    ));

    // Out-of-range strengths fail validation before any contraction.
    let (ideal, depol) = {
        let mut c = Circuit::new(1);
        c.h(0).noise(NoiseChannel::Depolarizing { p: 0.99 }, &[0]);
        (c.ideal(), c)
    };
    let compiled = Checker::new(&ideal, &depol).compile().expect("compile");
    assert!(matches!(
        compiled.sweep_noise(0.1, &[0.9, 1.5]).unwrap_err(),
        QaecError::NoiseSweepUnsupported { .. }
    ));
}

/// Auto algorithm selection is resolved once at compile time and
/// reported on the session.
#[test]
fn compile_resolves_auto_choice() {
    let (ideal, few) = fixture(3, 1); // 4 terms → Algorithm I
    let compiled = Checker::new(&ideal, &few).compile().expect("compile");
    assert_eq!(compiled.algorithm(), qaec::AlgorithmUsed::AlgorithmI);
    assert_eq!(compiled.noise_channels().len(), 1);

    let (ideal, many) = fixture(3, 4); // 256 terms → Algorithm II
    let compiled = Checker::new(&ideal, &many).compile().expect("compile");
    assert_eq!(compiled.algorithm(), qaec::AlgorithmUsed::AlgorithmII);
}
