//! The paper's worked examples and headline claims, verified end to end.

use qaec::{
    check_equivalence, fidelity_alg1, fidelity_alg2, jamiolkowski_fidelity, AlgorithmChoice,
    CheckOptions, Verdict,
};
use qaec_circuit::generators::{
    bernstein_vazirani_all_ones, grover_dac21, mod_mul_7x1_mod15, qft, quantum_volume,
    randomized_benchmarking, QftStyle,
};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};

/// The paper's Fig. 2: noisy 2-qubit QFT with a bit flip on q2 and a
/// phase flip on q1.
fn noisy_qft2(p: f64) -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0)
        .noise(NoiseChannel::BitFlip { p }, &[1])
        .cp(std::f64::consts::FRAC_PI_2, 1, 0)
        .noise(NoiseChannel::PhaseFlip { p }, &[0])
        .h(1)
        .swap(0, 1);
    c
}

#[test]
fn example_3_fidelity_is_p_squared_via_alg1() {
    let p = 0.95;
    let noisy = noisy_qft2(p);
    let report =
        fidelity_alg1(&noisy.ideal(), &noisy, None, &CheckOptions::default()).expect("alg1");
    assert_eq!(report.total_terms, 4);
    assert_eq!(report.terms_computed, 4);
    assert!(
        (report.fidelity_lower - p * p).abs() < 1e-10,
        "F = {}, expected p² = {}",
        report.fidelity_lower,
        p * p
    );
}

#[test]
fn example_4_fidelity_is_p_squared_via_alg2() {
    let p = 0.95;
    let noisy = noisy_qft2(p);
    let report = fidelity_alg2(&noisy.ideal(), &noisy, &CheckOptions::default()).expect("alg2");
    assert!((report.fidelity - p * p).abs() < 1e-10);
}

#[test]
fn paper_epsilon_decision_with_early_termination() {
    // "Suppose p = 0.95 and our aim is to check if E ≈₀.₁ U. Clearly,
    // computing tr(U†E₁,₁) already suffices as F_J ≥ 0.9025 > 0.9."
    let p = 0.95;
    let noisy = noisy_qft2(p);
    let report = check_equivalence(
        &noisy.ideal(),
        &noisy,
        0.1,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmI,
            // One worker: the paper's argument is about the *sequence*
            // of decisions; extra workers legitimately start more terms
            // before the stop signal lands.
            threads: 1,
            ..CheckOptions::default()
        },
    )
    .expect("check");
    assert_eq!(report.verdict, Verdict::Equivalent);
    assert_eq!(
        report.terms_computed, 1,
        "best-first ordering must decide after the identity-identity term"
    );
    assert!(report.fidelity_bounds.0 > 0.9);
}

#[test]
fn early_negative_termination() {
    // With heavy noise the mass bound proves non-equivalence before
    // enumerating every term: bit flip with p = 0.5 twice.
    let mut noisy = Circuit::new(1);
    noisy
        .h(0)
        .noise(NoiseChannel::BitFlip { p: 0.5 }, &[0])
        .noise(NoiseChannel::BitFlip { p: 0.5 }, &[0])
        .h(0);
    let ideal = noisy.ideal();
    let report = check_equivalence(
        &ideal,
        &noisy,
        0.05,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmI,
            ..CheckOptions::default()
        },
    )
    .expect("check");
    assert_eq!(report.verdict, Verdict::NotEquivalent);
    assert!(
        report.terms_computed <= report.total_terms,
        "non-equivalence may be provable early"
    );
}

#[test]
fn definition_1_threshold_behaviour() {
    // F_J = p² = 0.9025: ε-equivalent iff 1 − ε < 0.9025.
    let p = 0.95;
    let noisy = noisy_qft2(p);
    let ideal = noisy.ideal();
    for (eps, expected) in [
        (0.2, Verdict::Equivalent),
        (0.1, Verdict::Equivalent),
        (0.0975, Verdict::Equivalent), // 1 − 0.0975 = 0.9025 is NOT < F
        (0.05, Verdict::NotEquivalent),
        (0.0, Verdict::NotEquivalent),
    ] {
        let report =
            check_equivalence(&ideal, &noisy, eps, &CheckOptions::default()).expect("check");
        // At eps = 0.0975 the comparison is F > 0.9025 with F = 0.9025:
        // strictly false, but floating point may land either side; skip
        // the razor edge.
        if (eps - 0.0975).abs() < 1e-12 {
            continue;
        }
        assert_eq!(report.verdict, expected, "ε = {eps}");
    }
}

#[test]
fn noise_free_implementation_is_zero_equivalent() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let report = check_equivalence(&ideal, &ideal, 0.0, &CheckOptions::default()).expect("check");
    // F = 1 > 1 − 0 requires strict inequality: 1 > 1 fails; the paper's
    // definition makes ε = 0 never-equivalent even for identical
    // circuits. Use a tiny ε instead for the positive case.
    assert_eq!(report.verdict, Verdict::NotEquivalent);
    let report = check_equivalence(&ideal, &ideal, 1e-9, &CheckOptions::default()).expect("check");
    assert_eq!(report.verdict, Verdict::Equivalent);
}

#[test]
fn table_i_circuit_inventory() {
    // (name, n, |G|) rows of Table I that our generators replicate
    // exactly.
    let rows: Vec<(&str, Circuit, usize, usize)> = vec![
        ("rb", randomized_benchmarking(2, 7, 0xDAC), 2, 7),
        ("qft2", qft(2, QftStyle::DecomposedNoSwaps), 2, 7),
        ("grover", grover_dac21(), 3, 96),
        ("qft3", qft(3, QftStyle::DecomposedNoSwaps), 3, 18),
        ("qv_n3d5", quantum_volume(3, 5, 0xDAC), 3, 50),
        ("bv4", bernstein_vazirani_all_ones(4), 4, 11),
        ("7x1mod15", mod_mul_7x1_mod15(), 5, 14),
        ("bv5", bernstein_vazirani_all_ones(5), 5, 14),
        ("qft5", qft(5, QftStyle::DecomposedNoSwaps), 5, 55),
        ("qv_n5d5", quantum_volume(5, 5, 0xDAC), 5, 100),
        ("bv6", bernstein_vazirani_all_ones(6), 6, 17),
        ("qv_n6d5", quantum_volume(6, 5, 0xDAC), 6, 150),
        ("qft7", qft(7, QftStyle::DecomposedNoSwaps), 7, 112),
        ("qv_n7d5", quantum_volume(7, 5, 0xDAC), 7, 150),
        ("bv9", bernstein_vazirani_all_ones(9), 9, 26),
        ("qv_n9d5", quantum_volume(9, 5, 0xDAC), 9, 200),
        ("qft9", qft(9, QftStyle::DecomposedNoSwaps), 9, 189),
        ("qft10", qft(10, QftStyle::DecomposedNoSwaps), 10, 235),
        ("bv13", bernstein_vazirani_all_ones(13), 13, 38),
        ("bv14", bernstein_vazirani_all_ones(14), 14, 41),
        ("bv16", bernstein_vazirani_all_ones(16), 16, 47),
    ];
    for (name, circuit, n, gates) in rows {
        assert_eq!(circuit.n_qubits(), n, "{name} qubits");
        assert_eq!(circuit.gate_count(), gates, "{name} gates");
        assert!(circuit.is_unitary(), "{name} must be noiseless");
    }
}

#[test]
fn paper_noise_model_p999() {
    // "the probability parameter of the noisy gate is set to be 0.001
    // (i.e., p = 0.999)" — and the fidelity of a lightly noised circuit
    // stays near 1.
    let ideal = bernstein_vazirani_all_ones(5);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 6, 1);
    assert_eq!(noisy.noise_count(), 6);
    let f = jamiolkowski_fidelity(&ideal, &noisy, &CheckOptions::default()).expect("fidelity");
    assert!(
        f > 0.99,
        "six p=0.999 depolarizing sites keep F near 1: {f}"
    );
    assert!(f < 1.0, "noise must strictly reduce fidelity: {f}");
}

#[test]
fn larger_qubit_counts_run_where_the_baseline_cannot() {
    // The dense baseline MOs at 7 qubits; the diagram algorithms handle
    // bv9 directly (Table I's headline scalability claim).
    let ideal = bernstein_vazirani_all_ones(9);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 6, 2);
    assert!(
        qaec_dmsim::SuperOp::from_circuit(&noisy).is_err(),
        "baseline must MO"
    );
    let report = fidelity_alg2(&ideal, &noisy, &CheckOptions::default()).expect("alg2");
    assert!(report.fidelity > 0.98 && report.fidelity < 1.0);
}

#[test]
fn auto_choice_matches_crossover() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let light = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 1, 5);
    let heavy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 5, 5);
    assert_eq!(qaec::auto_choice(&light), qaec::AlgorithmUsed::AlgorithmI);
    assert_eq!(qaec::auto_choice(&heavy), qaec::AlgorithmUsed::AlgorithmII);
}
