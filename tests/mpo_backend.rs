//! The MPO approximate backend (Algorithm III) against the exact
//! algorithms, and the `Auto` portfolio's escalation contract.
//!
//! The contracts under test:
//!
//! * **Interval soundness** — on every smoke-class scenario and noise
//!   strength, the certified interval `[F_lo, F_hi]` of an explicit
//!   `--algorithm mpo` check contains the exact Algorithm II fidelity;
//! * **Tight-threshold parity** — with the truncation threshold tiny
//!   and the bond cap generous nothing is discarded, and the midpoint
//!   estimate matches the exact fidelity to 1e-9;
//! * **Verdict agreement** — whenever the interval decides at the
//!   paper's ε values, the verdict equals the exact one (an interval
//!   that cannot decide says `Inconclusive`, never the wrong side);
//! * **Portfolio escalation** — `Auto` on a wide, weakly-coupled pair
//!   runs the MPO pass; at an ε the interval straddles it escalates to
//!   an exact backend (recording the agreement cross-check) and never
//!   returns an inconclusive or interval-straddling verdict.

use qaec::{
    check_equivalence, jamiolkowski_fidelity, mpo_favored, AlgorithmChoice, AlgorithmUsed,
    CheckOptions, Checker, Verdict, MPO_WIDTH_THRESHOLD,
};
use qaec_circuit::generators::{grover_dac21, qft, quantum_volume, tile, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};

const SEED: u64 = 0xDAC21;

/// The bench-smoke circuit family: named ideal circuits small enough
/// for the exact backends to answer quickly.
fn scenarios() -> Vec<(&'static str, Circuit)> {
    vec![
        ("qft3", qft(3, QftStyle::DecomposedNoSwaps)),
        ("grover", grover_dac21()),
        ("qv3", quantum_volume(3, 2, SEED)),
        ("tiled-qft", tile(&qft(3, QftStyle::DecomposedNoSwaps), 3)),
    ]
}

fn mpo_options(svd_threshold: f64, max_bond: usize) -> CheckOptions {
    CheckOptions {
        algorithm: AlgorithmChoice::Mpo,
        svd_threshold,
        max_bond,
        ..CheckOptions::default()
    }
}

fn mpo_check(
    ideal: &Circuit,
    noisy: &Circuit,
    epsilon: f64,
    svd_threshold: f64,
    max_bond: usize,
) -> qaec::EquivalenceReport {
    let mut compiled = Checker::new(ideal, noisy)
        .options(mpo_options(svd_threshold, max_bond))
        .compile()
        .expect("mpo compile");
    compiled.check(epsilon).expect("mpo check")
}

/// The certified MPO interval contains the exact fidelity on every
/// smoke scenario, across noise strengths — at default truncation
/// settings, where truncation genuinely happens.
#[test]
fn mpo_interval_contains_exact_fidelity() {
    for (name, ideal) in scenarios() {
        for (k, p) in [0.999, 0.99, 0.9].into_iter().enumerate() {
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing { p },
                2,
                SEED + k as u64,
            );
            let exact =
                jamiolkowski_fidelity(&ideal, &noisy, &CheckOptions::default()).expect("exact");
            let report = mpo_check(&ideal, &noisy, 0.5, 1e-8, 16);
            let (lo, hi) = report.fidelity_bounds;
            assert_eq!(report.algorithm, AlgorithmUsed::Mpo, "{name} p={p}");
            assert!(
                lo - 1e-12 <= exact && exact <= hi + 1e-12,
                "{name} p={p}: exact {exact} outside certified [{lo}, {hi}]"
            );
            assert!(
                report.trunc_error.expect("mpo reports trunc_error") >= 0.0,
                "{name} p={p}"
            );
            assert!(report.bond_max.expect("mpo reports bond_max") >= 1);
        }
    }
}

/// With the truncation threshold tight and the bond cap generous, the
/// MPO contraction is exact up to rounding: the midpoint matches the
/// exact Algorithm II fidelity to 1e-9.
#[test]
fn tight_threshold_midpoint_matches_exact() {
    for (name, ideal) in scenarios() {
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.995 },
            2,
            SEED + 9,
        );
        let exact = jamiolkowski_fidelity(
            &ideal,
            &noisy,
            &CheckOptions {
                algorithm: AlgorithmChoice::AlgorithmII,
                ..CheckOptions::default()
            },
        )
        .expect("exact");
        let report = mpo_check(&ideal, &noisy, 0.5, 1e-13, 4096);
        let midpoint = (report.fidelity_bounds.0 + report.fidelity_bounds.1) / 2.0;
        assert!(
            (midpoint - exact).abs() < 1e-9,
            "{name}: midpoint {midpoint} vs exact {exact}"
        );
    }
}

/// At the paper's ε values a decided MPO verdict always agrees with the
/// exact decision; an undecidable interval is `Inconclusive`, never the
/// wrong side.
#[test]
fn decided_mpo_verdicts_agree_with_exact() {
    for (name, ideal) in scenarios() {
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.99 },
            2,
            SEED + 17,
        );
        for epsilon in [1e-4, 1e-2, 0.1, 0.3] {
            let exact = check_equivalence(&ideal, &noisy, epsilon, &CheckOptions::default())
                .expect("exact check");
            let report = mpo_check(&ideal, &noisy, epsilon, 1e-8, 16);
            if report.verdict != Verdict::Inconclusive {
                assert_eq!(
                    report.verdict, exact.verdict,
                    "{name} ε={epsilon}: decided MPO verdict must match exact"
                );
            }
        }
    }
}

/// The wide, weakly-coupled fixture the portfolio routes to MPO: eight
/// independent noisy QFT blocks, 24 qubits in total.
fn wide_shallow_pair() -> (Circuit, Circuit) {
    let block = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy_block = insert_random_noise(
        &block,
        &NoiseChannel::Depolarizing { p: 0.998 },
        1,
        SEED + 33,
    );
    (tile(&block, 8), tile(&noisy_block, 8))
}

/// `Auto` picks the MPO pass on the wide/shallow pair and answers from
/// it when the interval decides — and the session records Algorithm III
/// as the method used.
#[test]
fn auto_portfolio_answers_from_mpo_when_decidable() {
    let (ideal, noisy) = wide_shallow_pair();
    assert!(ideal.n_qubits() >= MPO_WIDTH_THRESHOLD);
    assert!(mpo_favored(&noisy), "fixture must be portfolio-favored");
    let mut compiled = Checker::new(&ideal, &noisy)
        .options(CheckOptions::default())
        .compile()
        .expect("auto compile");
    // A generous ε: the certified interval decides without escalation.
    let report = compiled.check(0.5).expect("auto check");
    assert_eq!(report.algorithm, AlgorithmUsed::Mpo);
    assert_eq!(report.verdict, Verdict::Equivalent);
    assert_eq!(
        report.cross_check, None,
        "no escalation, nothing to compare"
    );
    // The verdict agrees with a cold exact check.
    let exact = check_equivalence(
        &ideal,
        &noisy,
        0.5,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmII,
            ..CheckOptions::default()
        },
    )
    .expect("exact comparator");
    assert_eq!(report.verdict, exact.verdict);
}

/// When the certified interval straddles 1 − ε, `Auto` escalates to an
/// exact backend end-to-end: the report carries the exact algorithm, a
/// point (or proven) interval that does not straddle the threshold, and
/// the recorded cross-check against the MPO pass.
#[test]
fn auto_escalates_on_straddling_interval() {
    let (ideal, noisy) = wide_shallow_pair();
    // Find an ε the MPO interval cannot decide, from an explicit MPO
    // run's own bounds (the midpoint puts 1 − ε strictly inside them).
    let probe = mpo_check(&ideal, &noisy, 0.5, 1e-8, 16);
    let (lo, hi) = probe.fidelity_bounds;
    assert!(lo < hi, "truncation must have widened the interval");
    let epsilon = 1.0 - (lo + hi) / 2.0;

    let mut compiled = Checker::new(&ideal, &noisy)
        .options(CheckOptions::default())
        .compile()
        .expect("auto compile");
    let report = compiled.check(epsilon).expect("auto check");
    assert_ne!(
        report.algorithm,
        AlgorithmUsed::Mpo,
        "a straddling interval must escalate to an exact backend"
    );
    assert_ne!(report.verdict, Verdict::Inconclusive);
    // The escalated report still carries the MPO pass's metadata and the
    // two backends' intervals intersect.
    assert_eq!(report.cross_check, Some(true));
    assert!(report.trunc_error.is_some());
    assert!(report.bond_max.is_some());
    // And the Auto verdict is the exact verdict.
    let exact = check_equivalence(
        &ideal,
        &noisy,
        epsilon,
        &CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmII,
            ..CheckOptions::default()
        },
    )
    .expect("exact comparator");
    assert_eq!(report.verdict, exact.verdict);
    assert_eq!(
        report.fidelity_bounds.0.to_bits(),
        exact.fidelity_bounds.0.to_bits(),
        "escalated bounds are the exact backend's bounds"
    );
}

/// Exact queries on an `Auto` portfolio session keep the exactness
/// promise: `fidelity()` and whole noise sweeps escalate entirely and
/// return bit-identical values to a forced exact session.
#[test]
fn auto_exact_queries_bypass_the_mpo_estimate() {
    let (ideal, noisy) = wide_shallow_pair();
    let exact_opts = CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        ..CheckOptions::default()
    };
    let mut auto_session = Checker::new(&ideal, &noisy)
        .options(CheckOptions::default())
        .compile()
        .expect("auto compile");
    let mut exact_session = Checker::new(&ideal, &noisy)
        .options(exact_opts)
        .compile()
        .expect("exact compile");

    let auto_f = auto_session.fidelity().expect("auto fidelity");
    let exact_f = exact_session.fidelity().expect("exact fidelity");
    assert_eq!(
        auto_f.to_bits(),
        exact_f.to_bits(),
        "Auto fidelity() must be the exact value, not an MPO midpoint"
    );

    let strengths = [0.999, 0.99, 0.95];
    let auto_sweep = auto_session
        .sweep_noise(1e-2, &strengths)
        .expect("auto sweep");
    let exact_sweep = exact_session
        .sweep_noise(1e-2, &strengths)
        .expect("exact sweep");
    for (a, e) in auto_sweep.iter().zip(&exact_sweep) {
        assert_eq!(a.fidelity.to_bits(), e.fidelity.to_bits());
        assert_eq!(a.verdict, e.verdict);
    }
}

/// An explicit MPO session sweeps noise per point on re-instantiated
/// channels: every point's estimate is within the certified width of
/// the exact value and decided verdicts agree.
#[test]
fn explicit_mpo_noise_sweep_tracks_exact() {
    let (ideal, noisy) = wide_shallow_pair();
    let strengths = [0.999, 0.99, 0.9];
    let mpo_session = Checker::new(&ideal, &noisy)
        .options(mpo_options(1e-8, 16))
        .compile()
        .expect("mpo compile");
    let exact_session = Checker::new(&ideal, &noisy)
        .options(CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmII,
            ..CheckOptions::default()
        })
        .compile()
        .expect("exact compile");
    let mpo_points = mpo_session.sweep_noise(0.5, &strengths).expect("mpo sweep");
    let exact_points = exact_session
        .sweep_noise(0.5, &strengths)
        .expect("exact sweep");
    for ((p, m), e) in strengths.iter().zip(&mpo_points).zip(&exact_points) {
        // The estimate is a midpoint of an interval whose half-width the
        // backend certifies; 1e-6 is orders of magnitude above the
        // per-truncation floor and far below any physical effect.
        assert!(
            (m.fidelity - e.fidelity).abs() < 1e-6,
            "p={p}: mpo {} vs exact {}",
            m.fidelity,
            e.fidelity
        );
        if m.verdict != Verdict::Inconclusive {
            assert_eq!(m.verdict, e.verdict, "p={p}");
        }
    }
}
