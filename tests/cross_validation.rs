//! Cross-validation of every fidelity implementation in the workspace.
//!
//! Five independent paths compute `F_J(E, U)`:
//!
//! 1. Algorithm I on decision diagrams (`qaec::fidelity_alg1`),
//! 2. Algorithm II on decision diagrams (`qaec::fidelity_alg2`),
//! 3. dense Kraus-string enumeration (`qaec_dmsim`),
//! 4. the dense superoperator baseline (`process_fidelity`),
//! 5. the definitional Choi-state construction.
//!
//! They must agree to within floating-point noise on arbitrary circuits,
//! for every contraction strategy, variable order, and optimisation
//! setting.

use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions, TermOrder, VarOrderStyle};
use qaec_circuit::generators::random_circuit;
use qaec_circuit::noise_insertion::{insert_random_noise, noise_after_each_gate};
use qaec_circuit::{Circuit, NoiseChannel};
use qaec_dmsim::choi::choi_fidelity;
use qaec_dmsim::process_fidelity::{jamiolkowski_fidelity_kraus, process_fidelity_baseline};
use qaec_tensornet::Strategy;

const TOL: f64 = 1e-7;

fn assert_all_agree(ideal: &Circuit, noisy: &Circuit, label: &str) {
    let opts = CheckOptions::default();
    let alg1 = fidelity_alg1(ideal, noisy, None, &opts).expect("alg1");
    assert!(
        (alg1.fidelity_lower - alg1.fidelity_upper).abs() < 1e-9,
        "{label}: exact alg1 bounds must collapse"
    );
    let alg2 = fidelity_alg2(ideal, noisy, &opts).expect("alg2");
    let dense = jamiolkowski_fidelity_kraus(ideal, noisy).expect("kraus");
    let superop = process_fidelity_baseline(ideal, noisy).expect("superop");
    let choi = choi_fidelity(ideal, noisy).expect("choi");

    let reference = dense;
    for (name, value) in [
        ("alg1", alg1.fidelity_lower),
        ("alg2", alg2.fidelity),
        ("superop", superop),
        ("choi", choi),
    ] {
        assert!(
            (value - reference).abs() < TOL,
            "{label}: {name} = {value}, dense kraus = {reference}"
        );
    }
    assert!(
        (-1e-9..=1.0 + 1e-9).contains(&reference),
        "{label}: fidelity out of range: {reference}"
    );
}

#[test]
fn random_circuits_with_scattered_noise() {
    for seed in 0..8u64 {
        let n = 2 + (seed % 2) as usize;
        let ideal = random_circuit(n, 12, seed);
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.97 },
            2,
            seed + 50,
        );
        assert_all_agree(&ideal, &noisy, &format!("seed {seed}"));
    }
}

#[test]
fn all_channel_types_agree() {
    let channels = [
        NoiseChannel::BitFlip { p: 0.9 },
        NoiseChannel::PhaseFlip { p: 0.85 },
        NoiseChannel::BitPhaseFlip { p: 0.92 },
        NoiseChannel::Depolarizing { p: 0.95 },
        NoiseChannel::AmplitudeDamping { gamma: 0.15 },
        NoiseChannel::PhaseDamping { gamma: 0.2 },
        NoiseChannel::Pauli {
            pi: 0.88,
            px: 0.05,
            py: 0.03,
            pz: 0.04,
        },
        NoiseChannel::TwoQubitDepolarizing { p: 0.96 },
    ];
    for (k, ch) in channels.iter().enumerate() {
        let ideal = random_circuit(2, 8, k as u64);
        let noisy = insert_random_noise(&ideal, ch, 2, 99 - k as u64);
        assert_all_agree(&ideal, &noisy, ch.name());
    }
}

#[test]
fn mixed_arity_device_model_agrees() {
    use qaec_circuit::noise_insertion::device_noise_model;
    let ideal = random_circuit(3, 8, 77);
    let noisy = device_noise_model(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        &NoiseChannel::TwoQubitDepolarizing { p: 0.99 },
    );
    let opts = CheckOptions::default();
    let alg2 = fidelity_alg2(&ideal, &noisy, &opts).expect("alg2");
    let superop = process_fidelity_baseline(&ideal, &noisy).expect("superop");
    let choi = choi_fidelity(&ideal, &noisy).expect("choi");
    assert!((alg2.fidelity - superop).abs() < TOL);
    assert!((alg2.fidelity - choi).abs() < TOL);
}

#[test]
fn device_model_noise_on_every_gate() {
    let ideal = random_circuit(2, 6, 17);
    let noisy = noise_after_each_gate(&ideal, &NoiseChannel::Depolarizing { p: 0.995 });
    assert!(noisy.noise_count() >= 6);
    // Too many Kraus terms for dense enumeration in reasonable time?
    // 4^k with k ≈ 9 → 262144 — still fine dense, but only compare the
    // cheap oracles with Algorithm II.
    let opts = CheckOptions::default();
    let alg2 = fidelity_alg2(&ideal, &noisy, &opts).expect("alg2");
    let superop = process_fidelity_baseline(&ideal, &noisy).expect("superop");
    let choi = choi_fidelity(&ideal, &noisy).expect("choi");
    assert!((alg2.fidelity - superop).abs() < TOL);
    assert!((alg2.fidelity - choi).abs() < TOL);
}

#[test]
fn agreement_across_strategies_and_orders() {
    let ideal = random_circuit(3, 14, 5);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 2, 6);
    let reference = jamiolkowski_fidelity_kraus(&ideal, &noisy).expect("dense");
    for strategy in [
        Strategy::Sequential,
        Strategy::GreedySize,
        Strategy::MinDegree,
        Strategy::MinFill,
    ] {
        for var_order in [VarOrderStyle::QubitMajor, VarOrderStyle::TimeMajor] {
            let opts = CheckOptions {
                strategy,
                var_order,
                ..CheckOptions::default()
            };
            let alg2 = fidelity_alg2(&ideal, &noisy, &opts).expect("alg2");
            assert!(
                (alg2.fidelity - reference).abs() < TOL,
                "{strategy:?}/{var_order:?}: {} vs {reference}",
                alg2.fidelity
            );
        }
    }
}

#[test]
fn agreement_with_optimisations_enabled() {
    // Local cancellation + SWAP elimination must not change the value.
    let mut ideal = Circuit::new(3);
    ideal.h(0).cx(0, 1).swap(1, 2).s(2).cx(0, 2).swap(0, 1);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 3);
    let reference = jamiolkowski_fidelity_kraus(&ideal, &noisy).expect("dense");
    for (local, swap) in [(true, false), (false, true), (true, true)] {
        let opts = CheckOptions {
            local_optimization: local,
            swap_elimination: swap,
            ..CheckOptions::default()
        };
        let alg1 = fidelity_alg1(&ideal, &noisy, None, &opts).expect("alg1");
        let alg2 = fidelity_alg2(&ideal, &noisy, &opts).expect("alg2");
        assert!(
            (alg1.fidelity_lower - reference).abs() < TOL,
            "alg1 local={local} swap={swap}: {} vs {reference}",
            alg1.fidelity_lower
        );
        assert!(
            (alg2.fidelity - reference).abs() < TOL,
            "alg2 local={local} swap={swap}: {} vs {reference}",
            alg2.fidelity
        );
    }
}

#[test]
fn reuse_tables_and_term_order_do_not_change_results() {
    let ideal = random_circuit(2, 10, 21);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 22);
    let reference = jamiolkowski_fidelity_kraus(&ideal, &noisy).expect("dense");
    for reuse in [true, false] {
        for term_order in [TermOrder::BestFirst, TermOrder::Lexicographic] {
            let opts = CheckOptions {
                reuse_tables: reuse,
                term_order,
                ..CheckOptions::default()
            };
            let alg1 = fidelity_alg1(&ideal, &noisy, None, &opts).expect("alg1");
            assert!(
                (alg1.fidelity_lower - reference).abs() < TOL,
                "reuse={reuse} {term_order:?}: {} vs {reference}",
                alg1.fidelity_lower
            );
            assert_eq!(alg1.terms_computed, 64); // 4³ depolarizing strings
        }
    }
}

#[test]
fn parallel_alg1_matches_sequential() {
    let ideal = random_circuit(2, 10, 31);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 32);
    let sequential = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default())
        .expect("sequential")
        .fidelity_lower;
    let parallel = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &CheckOptions {
            threads: 4,
            ..CheckOptions::default()
        },
    )
    .expect("parallel")
    .fidelity_lower;
    assert!(
        (sequential - parallel).abs() < 1e-9,
        "{sequential} vs {parallel}"
    );
}

#[test]
fn noiseless_circuits_have_unit_fidelity() {
    for seed in 0..4u64 {
        let c = random_circuit(3, 20, seed);
        let opts = CheckOptions::default();
        let f1 = fidelity_alg1(&c, &c, None, &opts)
            .expect("alg1")
            .fidelity_lower;
        let f2 = fidelity_alg2(&c, &c, &opts).expect("alg2").fidelity;
        assert!((f1 - 1.0).abs() < 1e-9, "alg1 seed {seed}: {f1}");
        assert!((f2 - 1.0).abs() < 1e-9, "alg2 seed {seed}: {f2}");
    }
}

#[test]
fn distinct_unitaries_match_trace_formula() {
    // No noise at all: F = |tr(U†V)|²/d².
    let mut u = Circuit::new(1);
    u.h(0);
    let mut v = Circuit::new(1);
    v.x(0);
    let opts = CheckOptions::default();
    let f = fidelity_alg2(&u, &v, &opts).expect("alg2").fidelity;
    assert!((f - 0.5).abs() < 1e-9); // |tr(HX)|²/4 = 2/4
    let f1 = fidelity_alg1(&u, &v, None, &opts)
        .expect("alg1")
        .fidelity_lower;
    assert!((f1 - 0.5).abs() < 1e-9);
}
