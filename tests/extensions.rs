//! Integration coverage for the beyond-the-paper extensions: exact
//! checking, the general noisy-pair fidelity, the Monte Carlo estimator,
//! and the trajectory simulator — all wired against the same circuits.

use qaec::exact::{check_unitary_equivalence, ExactVerdict};
use qaec::{fidelity_alg2, fidelity_monte_carlo, CheckOptions};
use qaec_circuit::generators::{cuccaro_adder, ghz, qaoa_ring, w_state};
use qaec_circuit::noise_insertion::{device_noise_model, insert_random_noise};
use qaec_circuit::{Circuit, NoiseChannel};
use qaec_dmsim::density::DensityMatrix;
use qaec_dmsim::general::jamiolkowski_fidelity_pair;
use qaec_dmsim::trajectory::average_trajectories;

#[test]
fn exact_checker_accepts_all_new_generators_against_themselves() {
    let circuits: Vec<Circuit> = vec![
        ghz(5),
        w_state(4),
        qaoa_ring(4, &[0.3, 0.1], &[0.2, 0.4]),
        cuccaro_adder(2),
    ];
    for c in circuits {
        let report = check_unitary_equivalence(&c, &c, &CheckOptions::default()).expect("check");
        assert_eq!(report.verdict, ExactVerdict::Equal);
    }
}

#[test]
fn exact_checker_distinguishes_ghz_from_w() {
    let report =
        check_unitary_equivalence(&ghz(3), &w_state(3), &CheckOptions::default()).expect("check");
    assert!(matches!(report.verdict, ExactVerdict::NotEquivalent { .. }));
}

#[test]
fn noisy_pair_fidelity_consistent_with_single_sided() {
    // Same noisy circuit on both sides → 1; one side ideal → matches the
    // TDD algorithm.
    let ideal = qaoa_ring(3, &[0.7], &[0.3]);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.98 }, 2, 5);
    let pair_same = jamiolkowski_fidelity_pair(&noisy, &noisy).expect("pair");
    assert!((pair_same - 1.0).abs() < 1e-7);

    let pair_vs_ideal = jamiolkowski_fidelity_pair(&ideal, &noisy).expect("pair");
    let alg2 = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())
        .expect("alg2")
        .fidelity;
    assert!(
        (pair_vs_ideal - alg2).abs() < 1e-7,
        "{pair_vs_ideal} vs {alg2}"
    );
}

#[test]
fn monte_carlo_tracks_exact_on_device_model() {
    let ideal = ghz(4);
    let noisy = device_noise_model(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        &NoiseChannel::TwoQubitDepolarizing { p: 0.995 },
    );
    let exact = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())
        .expect("alg2")
        .fidelity;
    let mc = fidelity_monte_carlo(&ideal, &noisy, 3000, 1, &CheckOptions::default()).expect("mc");
    let tolerance = (5.0 * mc.std_error).max(0.01);
    assert!(
        (mc.estimate - exact).abs() < tolerance,
        "mc {} vs exact {exact} (se {})",
        mc.estimate,
        mc.std_error
    );
}

#[test]
fn trajectory_ensemble_matches_density_matrix_on_w_state() {
    let ideal = w_state(3);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::AmplitudeDamping { gamma: 0.2 }, 2, 9);
    let exact = DensityMatrix::from_circuit(&noisy).expect("density");
    let sampled = average_trajectories(&noisy, 3000, 11);
    let err = sampled.matrix().max_abs_diff(exact.matrix());
    assert!(err < 0.08, "trajectory ensemble error {err}");
}

#[test]
fn remapped_circuits_stay_equivalent() {
    // Mapping a circuit onto different physical qubits, then mapping the
    // noise model the same way, preserves the fidelity.
    let ideal = ghz(3);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.95 }, 2, 3);
    let f = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())
        .expect("alg2")
        .fidelity;
    let map = [2usize, 0, 1];
    let ideal_m = ideal.remap_qubits(&map, 3).expect("remap");
    let noisy_m = noisy.remap_qubits(&map, 3).expect("remap");
    let f_m = fidelity_alg2(&ideal_m, &noisy_m, &CheckOptions::default())
        .expect("alg2")
        .fidelity;
    assert!((f - f_m).abs() < 1e-9, "{f} vs {f_m}");
}
