//! Early termination, deadlines and resource limits.

use qaec::{
    check_equivalence, fidelity_alg1, fidelity_alg2, AlgorithmChoice, CheckOptions, QaecError,
    TermOrder, Verdict,
};
use qaec_circuit::generators::{qft, random_circuit, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

#[test]
fn best_first_decides_faster_than_lexicographic() {
    // Many light noise sites: the identity string carries ~99% of the
    // mass, so best-first should decide ε-equivalence in one term.
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9995 }, 4, 8);
    let base = CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmI,
        // One worker: the exact decide-after-one-term count below is a
        // statement about the sequential decision sequence.
        threads: 1,
        ..CheckOptions::default()
    };

    let best = check_equivalence(
        &ideal,
        &noisy,
        0.05,
        &CheckOptions {
            term_order: TermOrder::BestFirst,
            ..base.clone()
        },
    )
    .expect("best-first");
    assert_eq!(best.verdict, Verdict::Equivalent);
    assert_eq!(best.terms_computed, 1);

    let lex = check_equivalence(
        &ideal,
        &noisy,
        0.05,
        &CheckOptions {
            term_order: TermOrder::Lexicographic,
            ..base
        },
    )
    .expect("lexicographic");
    assert_eq!(lex.verdict, Verdict::Equivalent);
    // Lexicographic happens to start at the all-identity term too, so it
    // also stops at one; the point is both verdicts agree.
    assert_eq!(best.verdict, lex.verdict);
}

#[test]
fn decide_and_exact_agree() {
    for seed in 0..4u64 {
        let ideal = random_circuit(2, 10, seed);
        let noisy =
            insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.95 }, 2, seed + 9);
        let opts = CheckOptions {
            algorithm: AlgorithmChoice::AlgorithmI,
            ..CheckOptions::default()
        };
        let exact = fidelity_alg1(&ideal, &noisy, None, &opts).expect("exact");
        for eps in [0.001, 0.05, 0.3, 0.9] {
            let report = check_equivalence(&ideal, &noisy, eps, &opts).expect("decide");
            let expected = if exact.fidelity_lower > 1.0 - eps {
                Verdict::Equivalent
            } else {
                Verdict::NotEquivalent
            };
            // Skip razor-edge comparisons.
            if (exact.fidelity_lower - (1.0 - eps)).abs() < 1e-9 {
                continue;
            }
            assert_eq!(report.verdict, expected, "seed {seed}, ε = {eps}");
            assert!(report.fidelity_bounds.0 <= exact.fidelity_lower + 1e-9);
            assert!(report.fidelity_bounds.1 >= exact.fidelity_lower - 1e-9);
        }
    }
}

#[test]
fn expired_deadline_times_out() {
    let ideal = qft(4, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 4);
    let opts = CheckOptions {
        deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..CheckOptions::default()
    };
    assert_eq!(
        fidelity_alg1(&ideal, &noisy, None, &opts).unwrap_err(),
        QaecError::Timeout
    );
    assert_eq!(
        fidelity_alg2(&ideal, &noisy, &opts).unwrap_err(),
        QaecError::Timeout
    );
}

#[test]
fn generous_deadline_succeeds() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 2, 4);
    let opts = CheckOptions {
        deadline: Some(Instant::now() + Duration::from_secs(600)),
        ..CheckOptions::default()
    };
    assert!(fidelity_alg2(&ideal, &noisy, &opts).is_ok());
}

#[test]
fn max_terms_caps_work_but_keep_bounds_sound() {
    let ideal = random_circuit(2, 8, 3);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 5);
    let exact = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default())
        .expect("exact")
        .fidelity_lower;
    for cap in [1usize, 4, 16] {
        let capped = fidelity_alg1(
            &ideal,
            &noisy,
            None,
            &CheckOptions {
                max_terms: Some(cap),
                ..CheckOptions::default()
            },
        )
        .expect("capped");
        assert!(capped.terms_computed <= cap);
        assert!(capped.fidelity_lower <= exact + 1e-9, "cap {cap}");
        assert!(capped.fidelity_upper >= exact - 1e-9, "cap {cap}");
    }
}

#[test]
fn tiny_gc_threshold_is_correct_just_slower() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.99 }, 2, 13);
    let normal = fidelity_alg2(&ideal, &noisy, &CheckOptions::default())
        .expect("normal")
        .fidelity;
    let tight = fidelity_alg2(
        &ideal,
        &noisy,
        &CheckOptions {
            gc_threshold: Some(16),
            ..CheckOptions::default()
        },
    )
    .expect("tight gc")
    .fidelity;
    assert!((normal - tight).abs() < 1e-9);
}

#[test]
fn zero_noise_alg1_is_single_term() {
    let c = random_circuit(3, 12, 2);
    let report = fidelity_alg1(&c, &c, None, &CheckOptions::default()).expect("alg1");
    assert_eq!(report.total_terms, 1);
    assert_eq!(report.terms_computed, 1);
    assert!((report.fidelity_lower - 1.0).abs() < 1e-9);
}

#[test]
fn auto_choice_boundary_is_inclusive_at_threshold() {
    use qaec::{auto_choice, AlgorithmUsed, AUTO_TERM_THRESHOLD};
    // Two depolarizing sites = 16 terms = exactly the threshold → Alg I.
    let mut at = Circuit::new(1);
    at.noise(NoiseChannel::Depolarizing { p: 0.9 }, &[0])
        .noise(NoiseChannel::Depolarizing { p: 0.9 }, &[0]);
    assert_eq!(at.kraus_term_count(), AUTO_TERM_THRESHOLD);
    assert_eq!(auto_choice(&at), AlgorithmUsed::AlgorithmI);
    // One more bit-flip doubles it → Alg II.
    let mut over = at.clone();
    over.noise(NoiseChannel::BitFlip { p: 0.9 }, &[0]);
    assert_eq!(auto_choice(&over), AlgorithmUsed::AlgorithmII);
}

#[test]
fn empty_circuits_are_equivalent() {
    let a = Circuit::new(3);
    let report = check_equivalence(&a, &a, 0.5, &CheckOptions::default()).expect("check");
    assert_eq!(report.verdict, Verdict::Equivalent);
    assert!((report.fidelity_bounds.0 - 1.0).abs() < 1e-12);
}
