//! Integration tests for the serving layer: the content-keyed session
//! cache (`qaec::Service`) and the `qaec serve` batch entry point.
//!
//! The acceptance bar (ISSUE 6): cache hits answer bit-identically to
//! cold compiles, the LRU respects the warm-store byte budget measured
//! through `SharedTddStore::bytes_used`, a concurrent cold herd
//! compiles once, and a malformed serve request is a structured JSON
//! error — never a crash.
//!
//! Plan-build counting (`qaec_tensornet::plan::build_count`) is
//! process-global and therefore asserted only in the single-flow
//! `bench_smoke` harness, never here where tests run concurrently.

use qaec::{
    check_equivalence, AlgorithmChoice, CacheOutcome, CheckOptions, Checker, QaecError, Service,
    ServiceConfig, ServiceQuery, ServiceReply, ServiceRequest, SharedTableMode,
};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{pair_hash, Circuit, NoiseChannel};

/// A QFT pair with `sites` depolarizing faults at seeded positions.
fn fixture(n: usize, sites: usize, seed: u64) -> (Circuit, Circuit) {
    let ideal = qft(n, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        sites,
        seed,
    );
    (ideal, noisy)
}

/// Deterministic-by-construction options: shared-store runs are
/// bit-reproducible at every thread count, so every comparison below
/// compares like with like regardless of the CI env matrix
/// (`QAEC_THREADS` / `QAEC_SHARED_TABLE`).
fn options(algorithm: AlgorithmChoice, threads: usize) -> CheckOptions {
    CheckOptions {
        algorithm,
        threads,
        shared_table: SharedTableMode::On,
        ..CheckOptions::default()
    }
}

fn service(algorithm: AlgorithmChoice, threads: usize, cache_bytes: Option<usize>) -> Service {
    Service::new(ServiceConfig {
        options: options(algorithm, threads),
        cache_bytes,
    })
}

fn check_request(ideal: &Circuit, noisy: &Circuit, epsilon: f64) -> ServiceRequest {
    ServiceRequest {
        ideal: ideal.clone(),
        noisy: noisy.clone(),
        query: ServiceQuery::Check { epsilon },
        algorithm: None,
    }
}

fn check_reply(response: &qaec::ServiceResponse) -> &qaec::EquivalenceReport {
    match response.result.as_ref().expect("check succeeds") {
        ServiceReply::Check(report) => report,
        other => panic!("expected a check reply, got {other:?}"),
    }
}

#[test]
fn cache_hits_are_bit_identical_to_cold_checks() {
    // Both algorithm paths: few-site (Algorithm I territory) and
    // many-site (Algorithm II).
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        let (ideal, noisy) = fixture(3, 2, 0xC0FFEE);
        let service = service(algorithm, 1, None);
        let request = check_request(&ideal, &noisy, 1e-3);

        let cold = service.handle(&request);
        let warm = service.handle(&request);
        assert_eq!(cold.cache, CacheOutcome::Miss, "{algorithm:?}");
        assert_eq!(warm.cache, CacheOutcome::Hit, "{algorithm:?}");
        assert_eq!(cold.key, pair_hash(&ideal, &noisy));
        assert_eq!(warm.key, cold.key);

        // Warm answers match the cached cold ones bit for bit...
        let (a, b) = (check_reply(&cold), check_reply(&warm));
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(
            a.fidelity_bounds.0.to_bits(),
            b.fidelity_bounds.0.to_bits(),
            "{algorithm:?}: hit must be bit-identical to the miss"
        );
        assert_eq!(a.fidelity_bounds.1.to_bits(), b.fidelity_bounds.1.to_bits());

        // ...and both match a cold one-shot check outside any cache.
        let one_shot = check_equivalence(&ideal, &noisy, 1e-3, &options(algorithm, 1))
            .expect("one-shot comparator");
        assert_eq!(a.verdict, one_shot.verdict);
        assert_eq!(
            a.fidelity_bounds.0.to_bits(),
            one_shot.fidelity_bounds.0.to_bits(),
            "{algorithm:?}: cached answer must equal a cold one-shot check"
        );

        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
    }
}

#[test]
fn sweep_queries_match_the_session_api() {
    let (ideal, noisy) = fixture(3, 4, 0xC0FFEE + 3);
    let service = service(AlgorithmChoice::AlgorithmII, 1, None);

    let epsilons = [0.2, 1e-2, 1e-4];
    let strengths = [0.999, 0.99, 0.9];
    let eps_reply = service.handle(&ServiceRequest {
        ideal: ideal.clone(),
        noisy: noisy.clone(),
        query: ServiceQuery::SweepEpsilon {
            epsilons: epsilons.to_vec(),
        },
        algorithm: None,
    });
    let noise_reply = service.handle(&ServiceRequest {
        ideal: ideal.clone(),
        noisy: noisy.clone(),
        query: ServiceQuery::SweepNoise {
            epsilon: 1e-2,
            strengths: strengths.to_vec(),
        },
        algorithm: None,
    });
    assert_eq!(
        noise_reply.cache,
        CacheOutcome::Hit,
        "same pair, same session"
    );

    // The direct session API on the same options is the oracle.
    let mut compiled = Checker::new(&ideal, &noisy)
        .options(options(AlgorithmChoice::AlgorithmII, 1))
        .compile()
        .expect("direct session compiles");
    let direct_eps = compiled.sweep_epsilon(&epsilons).expect("direct ε sweep");
    let direct_noise = compiled
        .sweep_noise(1e-2, &strengths)
        .expect("direct noise sweep");

    match eps_reply.result.expect("ε sweep succeeds") {
        ServiceReply::SweepEpsilon(points) => {
            assert_eq!(points.len(), direct_eps.len());
            for (served, direct) in points.iter().zip(&direct_eps) {
                assert_eq!(served.verdict, direct.verdict);
                assert_eq!(
                    served.fidelity_bounds.0.to_bits(),
                    direct.fidelity_bounds.0.to_bits()
                );
            }
        }
        other => panic!("expected an ε sweep reply, got {other:?}"),
    }
    match noise_reply.result.expect("noise sweep succeeds") {
        ServiceReply::SweepNoise(points) => {
            assert_eq!(points.len(), direct_noise.len());
            for (served, direct) in points.iter().zip(&direct_noise) {
                assert_eq!(served.verdict, direct.verdict);
                assert_eq!(served.fidelity.to_bits(), direct.fidelity.to_bits());
            }
        }
        other => panic!("expected a noise sweep reply, got {other:?}"),
    }
}

#[test]
fn lru_eviction_respects_the_byte_budget() {
    // Algorithm II sessions always hold a warm store, so their
    // `warm_store_bytes` is what the budget meters.
    let pairs: Vec<(Circuit, Circuit)> = (0..3).map(|k| fixture(3, 2, 0xBEEF + k)).collect();

    // Unbudgeted: every session stays resident; the footprint is the
    // sum of live `bytes_used` readings.
    let unbounded = service(AlgorithmChoice::AlgorithmII, 1, None);
    for (ideal, noisy) in &pairs {
        unbounded.handle(&check_request(ideal, noisy, 1e-3));
    }
    let stats = unbounded.stats();
    assert_eq!(stats.sessions, 3);
    assert_eq!(stats.evictions, 0);
    assert!(stats.store_bytes > 0, "warm stores must be accounted");
    let one_session_bytes = stats.store_bytes as usize / 3;

    // A budget that fits two sessions but not three: the third request
    // must evict exactly the least-recently-used pair.
    let budget = one_session_bytes * 5 / 2;
    let bounded = service(AlgorithmChoice::AlgorithmII, 1, Some(budget));
    for (ideal, noisy) in &pairs {
        bounded.handle(&check_request(ideal, noisy, 1e-3));
    }
    let stats = bounded.stats();
    assert_eq!(stats.sessions, 2, "budget {budget} holds two sessions");
    assert_eq!(stats.evictions, 1);
    assert!(
        stats.store_bytes as usize <= budget,
        "resident bytes {} must fit the budget {budget}",
        stats.store_bytes
    );
    // Pair 1 (recently used) is still cached; pair 0 (the LRU victim)
    // must recompile.
    let hit = bounded.handle(&check_request(&pairs[1].0, &pairs[1].1, 1e-3));
    assert_eq!(hit.cache, CacheOutcome::Hit);
    let evicted = bounded.handle(&check_request(&pairs[0].0, &pairs[0].1, 1e-3));
    assert_eq!(
        evicted.cache,
        CacheOutcome::Miss,
        "the LRU victim was evicted"
    );

    // The degenerate budget keeps only the just-served session — and
    // still serves correctly (a pair larger than the budget is never
    // evicted mid-request).
    let tiny = service(AlgorithmChoice::AlgorithmII, 1, Some(1));
    for (ideal, noisy) in &pairs {
        let response = tiny.handle(&check_request(ideal, noisy, 1e-3));
        assert!(response.result.is_ok());
        assert_eq!(
            tiny.stats().sessions,
            1,
            "only the serving session survives"
        );
    }
    assert_eq!(tiny.stats().evictions, 2);
}

#[test]
fn single_flight_compiles_a_cold_herd_once() {
    let (ideal, noisy) = fixture(3, 4, 0xC0FFEE + 7);
    let service = service(AlgorithmChoice::AlgorithmII, 1, None);
    let request = check_request(&ideal, &noisy, 1e-3);

    let responses: Vec<qaec::ServiceResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| service.handle(&request)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("herd thread"))
            .collect()
    });

    let stats = service.stats();
    assert_eq!(
        stats.compiles, 1,
        "a thundering herd on one cold pair compiles once"
    );
    assert_eq!(stats.misses, 1, "exactly one request created the entry");
    assert_eq!(stats.hits, 7);
    assert_eq!(stats.sessions, 1);
    let first = check_reply(&responses[0]);
    for response in &responses {
        let report = check_reply(response);
        assert_eq!(report.verdict, first.verdict);
        assert_eq!(
            report.fidelity_bounds.0.to_bits(),
            first.fidelity_bounds.0.to_bits(),
            "every herd member sees the same session's answer"
        );
    }
}

#[test]
fn batches_group_by_pair_and_answer_in_input_order() {
    let a = fixture(3, 2, 0xAAAA);
    let b = fixture(3, 2, 0xBBBB);
    // Interleaved stream [A, B, A, B, A]: two distinct pairs.
    let requests = [
        check_request(&a.0, &a.1, 1e-3),
        check_request(&b.0, &b.1, 1e-3),
        check_request(&a.0, &a.1, 1e-3),
        check_request(&b.0, &b.1, 1e-3),
        check_request(&a.0, &a.1, 1e-3),
    ];
    let service = service(AlgorithmChoice::AlgorithmII, 2, None);
    let responses = service.handle_batch(&requests);

    assert_eq!(responses.len(), 5);
    let key_a = pair_hash(&a.0, &a.1);
    let key_b = pair_hash(&b.0, &b.1);
    let expected = [key_a, key_b, key_a, key_b, key_a];
    for (k, response) in responses.iter().enumerate() {
        assert_eq!(response.key, expected[k], "response {k} out of order");
    }
    // Repeats of one pair share a session, so they answer identically.
    for (i, j) in [(0, 2), (2, 4), (1, 3)] {
        assert_eq!(
            check_reply(&responses[i]).fidelity_bounds.0.to_bits(),
            check_reply(&responses[j]).fidelity_bounds.0.to_bits()
        );
    }
    let stats = service.stats();
    assert_eq!(stats.compiles, 2, "one compile per distinct pair");
    assert_eq!(stats.misses, 2);
    assert_eq!(stats.hits, 3);
}

#[test]
fn invalid_requests_error_without_poisoning_the_cache() {
    let service = service(AlgorithmChoice::AlgorithmII, 1, None);

    // A width mismatch is rejected before the cache is touched.
    let (ideal, _) = fixture(3, 2, 0xDEAD);
    let (_, wrong_width) = fixture(4, 2, 0xDEAD);
    let response = service.handle(&check_request(&ideal, &wrong_width, 1e-3));
    assert!(matches!(
        response.result,
        Err(QaecError::WidthMismatch { ideal: 3, noisy: 4 })
    ));
    let stats = service.stats();
    assert_eq!((stats.hits, stats.misses, stats.sessions), (0, 0, 0));

    // An out-of-range ε fails the query but still caches the compiled
    // session for later valid queries on the same pair.
    let (ideal, noisy) = fixture(3, 2, 0xDEAD);
    let response = service.handle(&check_request(&ideal, &noisy, 1.5));
    assert!(matches!(
        response.result,
        Err(QaecError::InvalidEpsilon { .. })
    ));
    assert_eq!(service.stats().sessions, 1);
    let retry = service.handle(&check_request(&ideal, &noisy, 1e-3));
    assert_eq!(
        retry.cache,
        CacheOutcome::Hit,
        "the session survived the bad ε"
    );
    assert!(retry.result.is_ok());
}

#[test]
fn malformed_serve_requests_are_structured_errors_not_crashes() {
    // Drive the CLI's serve entry point end to end: a stream mixing a
    // valid request with malformed ones must answer every line, in
    // order, and keep serving.
    let service = Service::new(ServiceConfig::default());
    let ideal = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0], q[1];\\n";
    let noisy = "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\n\
                 // qaec.noise: depolarizing(0.999) q[0];\\ncx q[0], q[1];\\n";
    let input = format!(
        concat!(
            "{{not json at all\n",
            "{{\"v\": 1, \"id\": 1, \"op\": \"check\", \"ideal\": \"{i}\", ",
            "\"noisy\": \"{n}\", \"epsilon\": 0.05}}\n",
            "{{\"v\": 1, \"id\": 2, \"op\": \"launch_missiles\"}}\n",
            "{{\"v\": 1, \"id\": 3, \"op\": \"check\", \"epsilon\": 0.05}}\n",
            "{{\"v\": 1, \"id\": 4, \"op\": \"stats\"}}\n",
        ),
        i = ideal,
        n = noisy,
    );
    let mut out = Vec::new();
    qaec_cli::serve::serve_batch(&service, input.as_bytes(), &mut out).expect("serve_batch");
    let text = String::from_utf8(out).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "every request line is answered:\n{text}");

    assert!(lines[0].contains("\"ok\": false"), "{}", lines[0]);
    assert!(lines[0].contains("\"error\""), "{}", lines[0]);
    assert!(lines[1].contains("\"ok\": true"), "{}", lines[1]);
    assert!(lines[1].contains("\"id\": 1"), "{}", lines[1]);
    assert!(lines[1].contains("\"verdict\""), "{}", lines[1]);
    assert!(lines[2].contains("\"ok\": false"), "{}", lines[2]);
    assert!(lines[2].contains("unknown op"), "{}", lines[2]);
    assert!(lines[3].contains("\"ok\": false"), "{}", lines[3]);
    assert!(lines[3].contains("missing"), "{}", lines[3]);
    // The stats barrier proves the service survived the bad lines: the
    // one valid request was served.
    assert!(lines[4].contains("\"op\": \"stats\""), "{}", lines[4]);
    assert!(lines[4].contains("\"misses\": 1"), "{}", lines[4]);
    assert!(lines[4].contains("\"compiles\": 1"), "{}", lines[4]);
}
