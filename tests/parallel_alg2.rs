//! Plan-level parallel Algorithm II: determinism, cross-algorithm
//! agreement and deadline behaviour of the DAG-scheduled contraction.
//!
//! The properties under test mirror the Algorithm I engine suite:
//! shared-store runs must be **bit-identical** for every thread count
//! (the scheduler's purity argument), `--threads` must not change what
//! `check` reports, and deadlines must fire on every worker count.

use qaec::{
    check_equivalence, fidelity_alg1, fidelity_alg2, AlgorithmChoice, CheckOptions,
    SharedTableMode, TermOrder,
};
use qaec_circuit::generators::{grover_dac21, qft, tile, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

fn fixtures() -> Vec<(&'static str, Circuit, Circuit)> {
    let qft4 = qft(4, QftStyle::DecomposedNoSwaps);
    let qft4_noisy = insert_random_noise(&qft4, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 11);
    let grover = grover_dac21();
    let grover_noisy =
        insert_random_noise(&grover, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 13);
    vec![
        ("qft4_k3", qft4, qft4_noisy),
        ("grover_k4", grover, grover_noisy),
    ]
}

fn alg2_options(threads: usize, shared_table: SharedTableMode) -> CheckOptions {
    CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        threads,
        shared_table,
        ..CheckOptions::default()
    }
}

/// Shared-store Algorithm II is bit-identical across thread counts: the
/// canonical store makes every plan step a pure function of its
/// operands, so any topological schedule computes the same fidelity and
/// the same `max_nodes`.
#[test]
fn parallel_alg2_is_bit_identical_across_thread_counts() {
    for (name, ideal, noisy) in fixtures() {
        let reference = fidelity_alg2(&ideal, &noisy, &alg2_options(1, SharedTableMode::On))
            .expect("sequential shared");
        for threads in [2usize, 4, 8] {
            let parallel =
                fidelity_alg2(&ideal, &noisy, &alg2_options(threads, SharedTableMode::On))
                    .expect("parallel shared");
            assert_eq!(
                parallel.fidelity.to_bits(),
                reference.fidelity.to_bits(),
                "{name} threads={threads}: fidelity drifted"
            );
            assert_eq!(
                parallel.max_nodes, reference.max_nodes,
                "{name} threads={threads}: max_nodes drifted"
            );
        }
    }
}

/// The acceptance property of the top-level checker: under default
/// options, `check --algorithm 2 --threads 4` reports bit-identical
/// fidelity bounds and the same verdict and node count as `--threads 1`
/// — whichever storage backend the environment selects (`Auto` resolves
/// to the shared store for Algorithm II at every thread count, `Off`
/// falls back to the private sequential driver for both).
#[test]
fn check_alg2_reports_identically_for_any_thread_count() {
    for (name, ideal, noisy) in fixtures() {
        for epsilon in [1e-2, 1e-4] {
            let base = CheckOptions {
                algorithm: AlgorithmChoice::AlgorithmII,
                ..CheckOptions::default()
            };
            let seq = check_equivalence(
                &ideal,
                &noisy,
                epsilon,
                &CheckOptions {
                    threads: 1,
                    ..base.clone()
                },
            )
            .expect("t1");
            let par = check_equivalence(
                &ideal,
                &noisy,
                epsilon,
                &CheckOptions {
                    threads: 4,
                    ..base.clone()
                },
            )
            .expect("t4");
            assert_eq!(seq.verdict, par.verdict, "{name} ε={epsilon}");
            assert_eq!(
                seq.fidelity_bounds.0.to_bits(),
                par.fidelity_bounds.0.to_bits(),
                "{name} ε={epsilon}: bounds drifted"
            );
            assert_eq!(seq.max_nodes, par.max_nodes, "{name} ε={epsilon}");
        }
    }
}

/// The private sequential driver (`--shared-table off`) and the shared
/// parallel driver agree to the interning tolerance, and Algorithm I
/// cross-checks Algorithm II under threads.
#[test]
fn parallel_alg2_agrees_with_private_driver_and_alg1() {
    for (name, ideal, noisy) in fixtures() {
        let private = fidelity_alg2(&ideal, &noisy, &alg2_options(4, SharedTableMode::Off))
            .expect("private fallback");
        let shared = fidelity_alg2(&ideal, &noisy, &alg2_options(4, SharedTableMode::On))
            .expect("shared parallel");
        assert!(
            (private.fidelity - shared.fidelity).abs() < 1e-9,
            "{name}: private {} vs shared {}",
            private.fidelity,
            shared.fidelity
        );
        let alg1 = fidelity_alg1(
            &ideal,
            &noisy,
            None,
            &CheckOptions {
                threads: 4,
                term_order: TermOrder::Lexicographic,
                ..CheckOptions::default()
            },
        )
        .expect("alg1 parallel");
        assert!(
            (alg1.fidelity_lower - shared.fidelity).abs() < 1e-6,
            "{name}: alg1 {} vs alg2 {}",
            alg1.fidelity_lower,
            shared.fidelity
        );
    }
}

/// Tiled ("simultaneous") circuits decompose into independent plan
/// branches — the workload plan-level parallelism exists for. The
/// fidelity must factor across tiles: F(block ⊗ block) over disjoint
/// noise = product of per-block fidelities.
#[test]
fn tiled_circuits_stay_bit_identical_and_factor() {
    let block = qft(3, QftStyle::DecomposedNoSwaps);
    let ideal = tile(&block, 3);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 6, 17);
    let seq = fidelity_alg2(&ideal, &noisy, &alg2_options(1, SharedTableMode::On)).expect("t1");
    let par = fidelity_alg2(&ideal, &noisy, &alg2_options(4, SharedTableMode::On)).expect("t4");
    assert_eq!(seq.fidelity.to_bits(), par.fidelity.to_bits());
    assert_eq!(seq.max_nodes, par.max_nodes);
    assert!(seq.fidelity > 0.9 && seq.fidelity < 1.0, "noise must bite");
}

/// Deadlines abort the parallel driver on every worker count, including
/// mid-contraction (the amortised in-recursion probe).
#[test]
fn parallel_alg2_deadline_times_out() {
    let (_, ideal, noisy) = fixtures().pop().expect("fixture");
    for threads in [1usize, 4] {
        let options = CheckOptions {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..alg2_options(threads, SharedTableMode::On)
        };
        assert_eq!(
            fidelity_alg2(&ideal, &noisy, &options).unwrap_err(),
            qaec::QaecError::Timeout,
            "threads={threads}"
        );
    }
}
