//! QASM round-trips through the full checking pipeline, plus benchmark
//! generator invariants.

use qaec::{jamiolkowski_fidelity, CheckOptions};
use qaec_circuit::generators::{
    bernstein_vazirani_all_ones, mod_mul_7x1_mod15, qft, quantum_volume, randomized_benchmarking,
    QftStyle,
};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{qasm, NoiseChannel};
use qaec_dmsim::Operator;

#[test]
fn qasm_roundtrip_preserves_fidelity() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.995 }, 3, 9);
    let f_direct = jamiolkowski_fidelity(&ideal, &noisy, &CheckOptions::default()).expect("direct");

    let ideal_text = qasm::write(&ideal);
    let noisy_text = qasm::write(&noisy);
    let ideal2 = qasm::parse(&ideal_text).expect("reparse ideal");
    let noisy2 = qasm::parse(&noisy_text).expect("reparse noisy");
    assert_eq!(ideal2, ideal);
    assert_eq!(noisy2, noisy);

    let f_roundtrip =
        jamiolkowski_fidelity(&ideal2, &noisy2, &CheckOptions::default()).expect("roundtrip");
    assert!((f_direct - f_roundtrip).abs() < 1e-12);
}

#[test]
fn qasm_roundtrip_every_generator() {
    let circuits = vec![
        bernstein_vazirani_all_ones(5),
        qft(4, QftStyle::Textbook),
        qft(4, QftStyle::DecomposedNoSwaps),
        quantum_volume(4, 3, 5),
        randomized_benchmarking(3, 12, 7),
        mod_mul_7x1_mod15(),
    ];
    for c in circuits {
        let text = qasm::write(&c);
        let back = qasm::parse(&text).expect("reparse");
        assert_eq!(back.n_qubits(), c.n_qubits());
        assert_eq!(back.len(), c.len());
        for (a, b) in back.iter().zip(c.iter()) {
            assert_eq!(a.qubits, b.qubits);
            match (a.as_gate(), b.as_gate()) {
                (Some(x), Some(y)) => assert!(x.approx_eq(y, 0.0)),
                (None, None) => {}
                _ => panic!("instruction kind flip"),
            }
        }
    }
}

#[test]
fn parsed_circuit_matches_original_unitary() {
    // Semantic (not just syntactic) round-trip: compare the unitaries.
    let c = quantum_volume(3, 2, 11);
    let text = qasm::write(&c);
    let back = qasm::parse(&text).expect("reparse");
    let u1 = Operator::from_circuit(&c).expect("original");
    let u2 = Operator::from_circuit(&back).expect("reparsed");
    assert!(u1.matrix().approx_eq(u2.matrix(), 1e-10));
}

#[test]
fn generators_are_deterministic_across_calls() {
    assert_eq!(quantum_volume(5, 5, 42), quantum_volume(5, 5, 42));
    assert_eq!(
        randomized_benchmarking(2, 7, 42),
        randomized_benchmarking(2, 7, 42)
    );
    let ideal = qft(4, QftStyle::DecomposedNoSwaps);
    let ch = NoiseChannel::Depolarizing { p: 0.999 };
    assert_eq!(
        insert_random_noise(&ideal, &ch, 5, 1),
        insert_random_noise(&ideal, &ch, 5, 1)
    );
}

#[test]
fn qft_inverse_composes_to_identity() {
    for n in 1..=4 {
        let f = qft(n, QftStyle::Textbook);
        let inv = f.adjoint().expect("unitary");
        let both = f.compose(&inv).expect("same width");
        let u = Operator::from_circuit(&both).expect("operator");
        assert!(u.matrix().is_identity(1e-9), "qft{n}·qft{n}† ≠ I");
    }
}

mod parser_robustness {
    use proptest::prelude::*;
    use qaec_circuit::qasm;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The parser must never panic: any input yields Ok or a
        /// structured parse error.
        #[test]
        fn parser_never_panics(input in "[ -~\n]{0,200}") {
            let _ = qasm::parse(&input);
        }

        /// Fuzzing around plausible program shapes.
        #[test]
        fn structured_fuzz(
            n in 1usize..5,
            gate in "(h|x|cx|u1|swap|bogus)",
            a in 0usize..6,
            b in 0usize..6,
            angle in -10.0f64..10.0,
        ) {
            let src = format!(
                "OPENQASM 2.0;\nqreg q[{n}];\n{gate}({angle}) q[{a}], q[{b}];\n"
            );
            let _ = qasm::parse(&src);
            let src = format!("qreg q[{n}];\n{gate} q[{a}];\n");
            let _ = qasm::parse(&src);
        }
    }
}

#[test]
fn noise_insertion_respects_budget_and_positions() {
    let ideal = bernstein_vazirani_all_ones(6);
    for k in [0usize, 1, 5, 14] {
        let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, k, 3);
        assert_eq!(noisy.noise_count(), k);
        assert_eq!(noisy.gate_count(), ideal.gate_count());
        assert_eq!(noisy.ideal(), ideal);
    }
}
