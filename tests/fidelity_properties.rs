//! Property-based tests of the Jamiolkowski fidelity: range, invariances,
//! and the stability/chaining properties the paper cites as reasons to
//! choose this metric (§III).

use proptest::prelude::*;
use qaec::{fidelity_alg1, fidelity_alg2, CheckOptions};
use qaec_circuit::generators::random_circuit;
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, Gate, NoiseChannel};

fn fidelity(ideal: &Circuit, noisy: &Circuit) -> f64 {
    fidelity_alg2(ideal, noisy, &CheckOptions::default())
        .expect("alg2")
        .fidelity
}

/// Strategy: a small random noisy instance described by seeds.
fn instance() -> impl proptest::strategy::Strategy<Value = (Circuit, Circuit)> {
    (
        1usize..=3,
        1usize..=12,
        any::<u64>(),
        0usize..=3,
        any::<u64>(),
        900u32..=999,
    )
        .prop_map(|(n, gates, seed, noises, noise_seed, p_millis)| {
            let ideal = random_circuit(n, gates, seed);
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing {
                    p: p_millis as f64 / 1000.0,
                },
                noises,
                noise_seed,
            );
            (ideal, noisy)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fidelity_is_in_unit_interval((ideal, noisy) in instance()) {
        let f = fidelity(&ideal, &noisy);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&f), "F = {f}");
    }

    #[test]
    fn alg1_bounds_bracket_alg2((ideal, noisy) in instance()) {
        let f2 = fidelity(&ideal, &noisy);
        let r1 = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default()).expect("alg1");
        prop_assert!(r1.fidelity_lower <= f2 + 1e-7,
            "lower {} > alg2 {f2}", r1.fidelity_lower);
        prop_assert!(r1.fidelity_upper >= f2 - 1e-7,
            "upper {} < alg2 {f2}", r1.fidelity_upper);
    }

    #[test]
    fn partial_term_bounds_contain_truth((ideal, noisy) in instance()) {
        let truth = fidelity(&ideal, &noisy);
        let r = fidelity_alg1(
            &ideal,
            &noisy,
            None,
            &CheckOptions { max_terms: Some(2), ..CheckOptions::default() },
        ).expect("alg1");
        prop_assert!(r.fidelity_lower <= truth + 1e-7);
        prop_assert!(r.fidelity_upper >= truth - 1e-7);
    }

    #[test]
    fn self_fidelity_is_one(seed in any::<u64>(), n in 1usize..=3, gates in 1usize..=15) {
        let c = random_circuit(n, gates, seed);
        let f = fidelity(&c, &c);
        prop_assert!((f - 1.0).abs() < 1e-8, "F(U,U) = {f}");
    }

    /// Stability (§III): F_J(E ⊗ I, U ⊗ I) = F_J(E, U) — adding an idle
    /// ancilla wire changes nothing.
    #[test]
    fn stability_under_idle_ancilla((ideal, noisy) in instance()) {
        let f = fidelity(&ideal, &noisy);
        let widen = |c: &Circuit| {
            let mut w = Circuit::new(c.n_qubits() + 1);
            for instr in c.iter() {
                match &instr.op {
                    qaec_circuit::Operation::Gate(g) => { w.gate(*g, &instr.qubits); }
                    qaec_circuit::Operation::Noise(ch) => { w.noise(ch.clone(), &instr.qubits); }
                }
            }
            w
        };
        let f_wide = fidelity(&widen(&ideal), &widen(&noisy));
        prop_assert!((f - f_wide).abs() < 1e-7, "{f} vs {f_wide}");
    }

    /// Chaining (§III): C_J(E₁∘E₂, U₁∘U₂) ≤ C_J(E₁, U₁) + C_J(E₂, U₂)
    /// with C_J = √(1 − F_J).
    #[test]
    fn chaining_inequality(
        seed1 in any::<u64>(), seed2 in any::<u64>(),
        noise_seed in any::<u64>(), p in 900u32..=999u32,
    ) {
        let n = 2;
        let ideal1 = random_circuit(n, 6, seed1);
        let ideal2 = random_circuit(n, 6, seed2);
        let ch = NoiseChannel::Depolarizing { p: p as f64 / 1000.0 };
        let noisy1 = insert_random_noise(&ideal1, &ch, 1, noise_seed);
        let noisy2 = insert_random_noise(&ideal2, &ch, 1, noise_seed.wrapping_add(1));

        let combined_ideal = ideal1.compose(&ideal2).expect("same width");
        let combined_noisy = noisy1.compose(&noisy2).expect("same width");

        let c = |f: f64| (1.0 - f.min(1.0)).max(0.0).sqrt();
        let lhs = c(fidelity(&combined_ideal, &combined_noisy));
        let rhs = c(fidelity(&ideal1, &noisy1)) + c(fidelity(&ideal2, &noisy2));
        prop_assert!(lhs <= rhs + 1e-6, "chaining violated: {lhs} > {rhs}");
    }

    /// Appending the same unitary gate to both circuits leaves the
    /// fidelity unchanged (unitary invariance of the trace distance).
    #[test]
    fn unitary_invariance((ideal, noisy) in instance(), gate_pick in 0usize..4) {
        let f = fidelity(&ideal, &noisy);
        let g = [Gate::H, Gate::S, Gate::X, Gate::T][gate_pick];
        let mut ideal2 = ideal.clone();
        ideal2.gate(g, &[0]);
        let mut noisy2 = noisy.clone();
        noisy2.gate(g, &[0]);
        let f2 = fidelity(&ideal2, &noisy2);
        prop_assert!((f - f2).abs() < 1e-7, "{f} vs {f2}");
    }

    /// The §IV-C optimisation passes never change the computed fidelity,
    /// including on circuits with SWAP gates.
    #[test]
    fn optimisation_passes_preserve_fidelity(
        seed in any::<u64>(), noise_seed in any::<u64>(),
        swaps in 0usize..3, p in 900u32..=999u32,
    ) {
        let mut ideal = random_circuit(3, 8, seed);
        for k in 0..swaps {
            ideal.swap(k % 3, (k + 1) % 3);
        }
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: p as f64 / 1000.0 },
            2,
            noise_seed,
        );
        let plain = fidelity(&ideal, &noisy);
        let optimized = fidelity_alg2(
            &ideal,
            &noisy,
            &CheckOptions {
                local_optimization: true,
                swap_elimination: true,
                ..CheckOptions::default()
            },
        ).expect("alg2").fidelity;
        prop_assert!((plain - optimized).abs() < 1e-7, "{plain} vs {optimized}");
    }

    /// Exact mixing identity: appending a depolarizing channel
    /// decomposes linearly over its Kraus terms,
    /// `F_J(N∘E, U) = p·F_J(E, U) + (1−p)/3 · Σ_{P∈{X,Y,Z}} F_J(P∘E, U)`.
    #[test]
    fn depolarizing_mixing_identity((ideal, noisy) in instance(), p2 in 800u32..=999u32) {
        let p = p2 as f64 / 1000.0;
        let mut noisier = noisy.clone();
        noisier.noise(NoiseChannel::Depolarizing { p }, &[0]);
        let lhs = fidelity(&ideal, &noisier);

        let with_pauli = |g: Gate| {
            let mut c = noisy.clone();
            c.gate(g, &[0]);
            fidelity(&ideal, &c)
        };
        let rhs = p * fidelity(&ideal, &noisy)
            + (1.0 - p) / 3.0
                * (with_pauli(Gate::X) + with_pauli(Gate::Y) + with_pauli(Gate::Z));
        prop_assert!((lhs - rhs).abs() < 1e-7, "{lhs} vs {rhs}");
    }
}
