//! The work-stealing parallel term engine: sequential/parallel agreement
//! on bounds and verdicts, `max_terms`/`deadline` composition, early
//! ε-exit on the Fig. 7 QFT workloads, and thread-count determinism of
//! the Monte-Carlo estimator.

use proptest::prelude::*;
use qaec::{
    check_equivalence, fidelity_alg1, fidelity_monte_carlo, AlgorithmChoice, CheckOptions,
    QaecError, TermOrder, Verdict,
};
use qaec_circuit::generators::{qft, random_circuit, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

fn with_threads(threads: usize, term_order: TermOrder) -> CheckOptions {
    CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmI,
        threads,
        term_order,
        ..CheckOptions::default()
    }
}

/// Strategy: a small random noisy instance described by seeds.
fn instance() -> impl proptest::strategy::Strategy<Value = (Circuit, Circuit)> {
    (
        1usize..=3,
        2usize..=10,
        any::<u64>(),
        1usize..=3,
        any::<u64>(),
        900u32..=999,
    )
        .prop_map(|(n, gates, seed, noises, noise_seed, p_millis)| {
            let ideal = random_circuit(n, gates, seed);
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing {
                    p: p_millis as f64 / 1000.0,
                },
                noises,
                noise_seed,
            );
            (ideal, noisy)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Exact mode: 2/4/8 workers reproduce the sequential bounds to
    /// 1e-9 in both term orders.
    #[test]
    fn parallel_exact_matches_sequential_bounds((ideal, noisy) in instance()) {
        for term_order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let seq = fidelity_alg1(&ideal, &noisy, None, &with_threads(1, term_order))
                .expect("sequential");
            for threads in [2usize, 4, 8] {
                let par = fidelity_alg1(&ideal, &noisy, None, &with_threads(threads, term_order))
                    .expect("parallel");
                prop_assert!(
                    (par.fidelity_lower - seq.fidelity_lower).abs() < 1e-9,
                    "{term_order:?} t={threads}: lower {} vs {}",
                    par.fidelity_lower, seq.fidelity_lower
                );
                prop_assert!(
                    (par.fidelity_upper - seq.fidelity_upper).abs() < 1e-9,
                    "{term_order:?} t={threads}: upper {} vs {}",
                    par.fidelity_upper, seq.fidelity_upper
                );
                prop_assert_eq!(par.terms_computed, seq.terms_computed);
                prop_assert!(par.stats.nodes_created > 0);
            }
        }
    }

    /// ε-decision mode: parallel verdicts agree with sequential ones for
    /// ε ∈ {1e-2, 1e-4} in both term orders (skipping razor-edge
    /// instances where fidelity sits within 1e-9 of the threshold).
    #[test]
    fn parallel_epsilon_verdicts_match_sequential((ideal, noisy) in instance()) {
        let exact = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default())
            .expect("exact")
            .fidelity_lower;
        for term_order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            for eps in [1e-2f64, 1e-4] {
                if (exact - (1.0 - eps)).abs() < 1e-9 {
                    continue; // razor edge: fp ordering may legitimately flip
                }
                let seq = check_equivalence(&ideal, &noisy, eps, &with_threads(1, term_order))
                    .expect("sequential");
                for threads in [2usize, 4, 8] {
                    let par =
                        check_equivalence(&ideal, &noisy, eps, &with_threads(threads, term_order))
                            .expect("parallel");
                    prop_assert_eq!(
                        par.verdict, seq.verdict,
                        "{:?} t={} ε={}: exact fidelity {}", term_order, threads, eps, exact
                    );
                }
            }
        }
    }
}

/// The acceptance workload: a Fig. 7 QFT circuit, ε = 1e-4, 4 threads.
/// The parallel ε run must return the sequential verdict while computing
/// strictly fewer terms than exact mode.
#[test]
fn parallel_epsilon_early_exits_on_fig7_qft_workloads() {
    for (n, k) in [(3usize, 4usize), (4, 3)] {
        let ideal = qft(n, QftStyle::DecomposedNoSwaps);
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            k,
            0xDAC2021 + k as u64,
        );
        let exact = fidelity_alg1(&ideal, &noisy, None, &with_threads(1, TermOrder::BestFirst))
            .expect("exact");
        let seq = fidelity_alg1(
            &ideal,
            &noisy,
            Some(1e-4),
            &with_threads(1, TermOrder::BestFirst),
        )
        .expect("sequential ε");
        let par = fidelity_alg1(
            &ideal,
            &noisy,
            Some(1e-4),
            &with_threads(4, TermOrder::BestFirst),
        )
        .expect("parallel ε");
        assert_eq!(par.verdict, seq.verdict, "qft{n} k={k}");
        assert!(par.verdict.is_some(), "qft{n} k={k} must decide early");
        assert!(
            par.terms_computed < exact.terms_computed,
            "qft{n} k={k}: parallel ε computed {} of {} terms — no early exit",
            par.terms_computed,
            exact.terms_computed
        );
    }
}

#[test]
fn parallel_epsilon_respects_expired_deadline() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 4);
    let options = CheckOptions {
        threads: 4,
        deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..CheckOptions::default()
    };
    assert_eq!(
        fidelity_alg1(&ideal, &noisy, Some(1e-4), &options).unwrap_err(),
        QaecError::Timeout
    );
}

/// Regression for the old fixed-chunk path: `threads > 1` with an ε
/// used to silently fall back to one core *or* ignore `max_terms`; now
/// both compose, and capped runs keep the bounds open.
#[test]
fn parallel_max_terms_and_epsilon_compose() {
    let ideal = random_circuit(2, 8, 17);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 18);
    let options = CheckOptions {
        threads: 4,
        max_terms: Some(3),
        term_order: TermOrder::Lexicographic,
        ..CheckOptions::default()
    };
    let report = fidelity_alg1(&ideal, &noisy, None, &options).expect("capped parallel");
    assert!(report.terms_computed <= 3);
    assert!(report.total_terms > 3);
    assert!(
        report.fidelity_upper > report.fidelity_lower,
        "capped parallel bounds collapsed: [{}, {}]",
        report.fidelity_lower,
        report.fidelity_upper
    );
}

/// The Monte-Carlo sample stream is a function of the seed alone:
/// thread count (and scheduling) changes only which worker's manager
/// contracts which distinct string, so estimates agree to the
/// weight-interning tolerance while the sample count and the
/// distinct-string set are identical. Bitwise reproducibility holds for
/// one worker; with several, the scheduler-dependent partition feeds
/// each manager a different interning history.
#[test]
fn monte_carlo_estimate_is_thread_count_stable() {
    let ideal = random_circuit(2, 8, 41);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 42);
    let reference = fidelity_monte_carlo(
        &ideal,
        &noisy,
        400,
        7,
        &with_threads(1, TermOrder::BestFirst),
    )
    .expect("sequential mc");
    let repeat = fidelity_monte_carlo(
        &ideal,
        &noisy,
        400,
        7,
        &with_threads(1, TermOrder::BestFirst),
    )
    .expect("repeat mc");
    // One worker → bitwise identical.
    assert_eq!(reference.estimate, repeat.estimate);
    assert_eq!(reference.std_error, repeat.std_error);
    for threads in [2usize, 4, 8] {
        let opts = with_threads(threads, TermOrder::BestFirst);
        let parallel = fidelity_monte_carlo(&ideal, &noisy, 400, 7, &opts).expect("parallel mc");
        // Identical sampling, interning-level numerical drift only.
        assert!(
            (reference.estimate - parallel.estimate).abs() < 1e-7,
            "t={threads}: {} vs {}",
            reference.estimate,
            parallel.estimate
        );
        assert_eq!(
            reference.distinct_strings, parallel.distinct_strings,
            "t={threads}"
        );
        assert_eq!(reference.samples, parallel.samples, "t={threads}");
    }
}

/// Every worker's decision-diagram statistics end up merged in the
/// report, and the ε-decision path carries them up to the checker.
#[test]
fn reports_carry_merged_worker_stats() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.99 }, 2, 5);
    let seq = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_threads(1, TermOrder::Lexicographic),
    )
    .expect("sequential");
    let par = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_threads(4, TermOrder::Lexicographic),
    )
    .expect("parallel");
    assert!(seq.stats.cont_calls > 0);
    assert!(par.stats.cont_calls > 0);
    assert!(par.stats.nodes_created >= seq.stats.nodes_created / 2);

    let checked = check_equivalence(&ideal, &noisy, 0.05, &with_threads(4, TermOrder::BestFirst))
        .expect("check");
    assert_eq!(checked.verdict, Verdict::Equivalent);
    assert!(checked.stats.nodes_created > 0);
}
