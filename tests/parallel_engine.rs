//! The work-stealing parallel term engine: sequential/parallel agreement
//! on bounds and verdicts, `max_terms`/`deadline` composition, early
//! ε-exit on the Fig. 7 QFT workloads, thread-count determinism of the
//! Monte-Carlo estimator, and — for the shared concurrent TDD store —
//! *bit-identical* results across every thread count.

use proptest::prelude::*;
use qaec::{
    check_equivalence, fidelity_alg1, fidelity_monte_carlo, AlgorithmChoice, CheckOptions,
    QaecError, SharedTableMode, TermOrder, Verdict,
};
use qaec_circuit::generators::{qft, random_circuit, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};
use std::time::{Duration, Instant};

fn with_threads(threads: usize, term_order: TermOrder) -> CheckOptions {
    CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmI,
        threads,
        term_order,
        ..CheckOptions::default()
    }
}

fn with_backend(
    threads: usize,
    term_order: TermOrder,
    shared_table: SharedTableMode,
) -> CheckOptions {
    CheckOptions {
        shared_table,
        ..with_threads(threads, term_order)
    }
}

/// Strategy: a small random noisy instance described by seeds.
fn instance() -> impl proptest::strategy::Strategy<Value = (Circuit, Circuit)> {
    (
        1usize..=3,
        2usize..=10,
        any::<u64>(),
        1usize..=3,
        any::<u64>(),
        900u32..=999,
    )
        .prop_map(|(n, gates, seed, noises, noise_seed, p_millis)| {
            let ideal = random_circuit(n, gates, seed);
            let noisy = insert_random_noise(
                &ideal,
                &NoiseChannel::Depolarizing {
                    p: p_millis as f64 / 1000.0,
                },
                noises,
                noise_seed,
            );
            (ideal, noisy)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Exact mode on the *private* backend: 2/4/8 workers reproduce the
    /// sequential bounds to 1e-9 in both term orders (each private
    /// manager snaps weights along its own history, so tolerance-level
    /// drift is the contract here; bit-equality is the shared store's).
    #[test]
    fn parallel_exact_matches_sequential_bounds((ideal, noisy) in instance()) {
        for term_order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let seq = fidelity_alg1(
                &ideal, &noisy, None,
                &with_backend(1, term_order, SharedTableMode::Off),
            ).expect("sequential");
            for threads in [2usize, 4, 8] {
                let par = fidelity_alg1(
                    &ideal, &noisy, None,
                    &with_backend(threads, term_order, SharedTableMode::Off),
                ).expect("parallel");
                prop_assert!(
                    (par.fidelity_lower - seq.fidelity_lower).abs() < 1e-9,
                    "{term_order:?} t={threads}: lower {} vs {}",
                    par.fidelity_lower, seq.fidelity_lower
                );
                prop_assert!(
                    (par.fidelity_upper - seq.fidelity_upper).abs() < 1e-9,
                    "{term_order:?} t={threads}: upper {} vs {}",
                    par.fidelity_upper, seq.fidelity_upper
                );
                prop_assert_eq!(par.terms_computed, seq.terms_computed);
                prop_assert!(par.stats.nodes_created > 0);
            }
        }
    }

    /// The shared store's acceptance property: `threads ∈ {1, 2, 4, 8}`
    /// produce **bit-identical** fidelity bounds and term counts (the
    /// former 1e-9 tolerance, upgraded to `f64::to_bits` equality). The
    /// two backends must still agree to interning-tolerance accuracy.
    #[test]
    fn shared_store_runs_are_bit_identical_across_thread_counts((ideal, noisy) in instance()) {
        for term_order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            let seq = fidelity_alg1(
                &ideal, &noisy, None,
                &with_backend(1, term_order, SharedTableMode::On),
            ).expect("sequential shared");
            for threads in [2usize, 4, 8] {
                let par = fidelity_alg1(
                    &ideal, &noisy, None,
                    &with_backend(threads, term_order, SharedTableMode::On),
                ).expect("parallel shared");
                prop_assert_eq!(
                    par.fidelity_lower.to_bits(), seq.fidelity_lower.to_bits(),
                    "{:?} t={}: lower {} vs {}",
                    term_order, threads, par.fidelity_lower, seq.fidelity_lower
                );
                prop_assert_eq!(
                    par.fidelity_upper.to_bits(), seq.fidelity_upper.to_bits(),
                    "{:?} t={}: upper {} vs {}",
                    term_order, threads, par.fidelity_upper, seq.fidelity_upper
                );
                prop_assert_eq!(par.terms_computed, seq.terms_computed);
            }
            let private = fidelity_alg1(
                &ideal, &noisy, None,
                &with_backend(1, term_order, SharedTableMode::Off),
            ).expect("sequential private");
            prop_assert!(
                (seq.fidelity_lower - private.fidelity_lower).abs() < 1e-8,
                "backends diverged: shared {} vs private {}",
                seq.fidelity_lower, private.fidelity_lower
            );
        }
    }

    /// ε-decision mode: parallel verdicts agree with sequential ones for
    /// ε ∈ {1e-2, 1e-4} in both term orders (skipping razor-edge
    /// instances where fidelity sits within 1e-9 of the threshold), and
    /// on the shared store the decided *bounds* are bit-identical too —
    /// the ordered reducer freezes the decision at the sequential-prefix
    /// point whatever the scheduling.
    #[test]
    fn parallel_epsilon_verdicts_match_sequential((ideal, noisy) in instance()) {
        let exact = fidelity_alg1(&ideal, &noisy, None, &CheckOptions::default())
            .expect("exact")
            .fidelity_lower;
        for term_order in [TermOrder::Lexicographic, TermOrder::BestFirst] {
            for eps in [1e-2f64, 1e-4] {
                if (exact - (1.0 - eps)).abs() < 1e-9 {
                    continue; // razor edge: fp ordering may legitimately flip
                }
                let seq = check_equivalence(&ideal, &noisy, eps, &with_threads(1, term_order))
                    .expect("sequential");
                let seq_shared = check_equivalence(
                    &ideal, &noisy, eps,
                    &with_backend(1, term_order, SharedTableMode::On),
                ).expect("sequential shared");
                for threads in [2usize, 4, 8] {
                    let par =
                        check_equivalence(&ideal, &noisy, eps, &with_threads(threads, term_order))
                            .expect("parallel");
                    prop_assert_eq!(
                        par.verdict, seq.verdict,
                        "{:?} t={} ε={}: exact fidelity {}", term_order, threads, eps, exact
                    );
                    let par_shared = check_equivalence(
                        &ideal, &noisy, eps,
                        &with_backend(threads, term_order, SharedTableMode::On),
                    ).expect("parallel shared");
                    prop_assert_eq!(par_shared.verdict, seq_shared.verdict);
                    prop_assert_eq!(
                        par_shared.fidelity_bounds.0.to_bits(),
                        seq_shared.fidelity_bounds.0.to_bits(),
                        "shared ε bounds must be bit-stable ({:?} t={} ε={})",
                        term_order, threads, eps
                    );
                    prop_assert_eq!(
                        par_shared.fidelity_bounds.1.to_bits(),
                        seq_shared.fidelity_bounds.1.to_bits()
                    );
                    prop_assert_eq!(par_shared.terms_computed, seq_shared.terms_computed);
                }
            }
        }
    }
}

/// The acceptance workload: a Fig. 7 QFT circuit, ε = 1e-4, 4 threads.
/// The parallel ε run must return the sequential verdict while computing
/// strictly fewer terms than exact mode.
#[test]
fn parallel_epsilon_early_exits_on_fig7_qft_workloads() {
    for (n, k) in [(3usize, 4usize), (4, 3)] {
        let ideal = qft(n, QftStyle::DecomposedNoSwaps);
        let noisy = insert_random_noise(
            &ideal,
            &NoiseChannel::Depolarizing { p: 0.999 },
            k,
            0xDAC2021 + k as u64,
        );
        let exact = fidelity_alg1(&ideal, &noisy, None, &with_threads(1, TermOrder::BestFirst))
            .expect("exact");
        let seq = fidelity_alg1(
            &ideal,
            &noisy,
            Some(1e-4),
            &with_threads(1, TermOrder::BestFirst),
        )
        .expect("sequential ε");
        let par = fidelity_alg1(
            &ideal,
            &noisy,
            Some(1e-4),
            &with_threads(4, TermOrder::BestFirst),
        )
        .expect("parallel ε");
        assert_eq!(par.verdict, seq.verdict, "qft{n} k={k}");
        assert!(par.verdict.is_some(), "qft{n} k={k} must decide early");
        assert!(
            par.terms_computed < exact.terms_computed,
            "qft{n} k={k}: parallel ε computed {} of {} terms — no early exit",
            par.terms_computed,
            exact.terms_computed
        );
    }
}

#[test]
fn parallel_epsilon_respects_expired_deadline() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 3, 4);
    let options = CheckOptions {
        threads: 4,
        deadline: Some(Instant::now() - Duration::from_secs(1)),
        ..CheckOptions::default()
    };
    assert_eq!(
        fidelity_alg1(&ideal, &noisy, Some(1e-4), &options).unwrap_err(),
        QaecError::Timeout
    );
}

/// Regression for the old fixed-chunk path: `threads > 1` with an ε
/// used to silently fall back to one core *or* ignore `max_terms`; now
/// both compose, and capped runs keep the bounds open.
#[test]
fn parallel_max_terms_and_epsilon_compose() {
    let ideal = random_circuit(2, 8, 17);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.9 }, 3, 18);
    let options = CheckOptions {
        threads: 4,
        max_terms: Some(3),
        term_order: TermOrder::Lexicographic,
        ..CheckOptions::default()
    };
    let report = fidelity_alg1(&ideal, &noisy, None, &options).expect("capped parallel");
    assert!(report.terms_computed <= 3);
    assert!(report.total_terms > 3);
    assert!(
        report.fidelity_upper > report.fidelity_lower,
        "capped parallel bounds collapsed: [{}, {}]",
        report.fidelity_lower,
        report.fidelity_upper
    );
}

/// The Monte-Carlo sample stream is a function of the seed alone: thread
/// count changes only which worker contracts which distinct string. On
/// the shared store every string's trace is scheduling-independent, so
/// the estimate is **bit-identical** for every thread count; on private
/// stores it agrees to the weight-interning tolerance.
#[test]
fn monte_carlo_estimate_is_thread_count_stable() {
    let ideal = random_circuit(2, 8, 41);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::BitFlip { p: 0.9 }, 2, 42);
    let reference = fidelity_monte_carlo(
        &ideal,
        &noisy,
        400,
        7,
        &with_backend(1, TermOrder::BestFirst, SharedTableMode::Off),
    )
    .expect("sequential mc");
    let repeat = fidelity_monte_carlo(
        &ideal,
        &noisy,
        400,
        7,
        &with_backend(1, TermOrder::BestFirst, SharedTableMode::Off),
    )
    .expect("repeat mc");
    // One worker → bitwise identical.
    assert_eq!(reference.estimate, repeat.estimate);
    assert_eq!(reference.std_error, repeat.std_error);
    let shared_reference = fidelity_monte_carlo(
        &ideal,
        &noisy,
        400,
        7,
        &with_backend(1, TermOrder::BestFirst, SharedTableMode::On),
    )
    .expect("sequential shared mc");
    for threads in [2usize, 4, 8] {
        let opts = with_backend(threads, TermOrder::BestFirst, SharedTableMode::Off);
        let parallel = fidelity_monte_carlo(&ideal, &noisy, 400, 7, &opts).expect("parallel mc");
        // Identical sampling; interning-level numerical drift only.
        assert!(
            (reference.estimate - parallel.estimate).abs() < 1e-7,
            "t={threads}: {} vs {}",
            reference.estimate,
            parallel.estimate
        );
        assert_eq!(
            reference.distinct_strings, parallel.distinct_strings,
            "t={threads}"
        );
        assert_eq!(reference.samples, parallel.samples, "t={threads}");

        let shared = fidelity_monte_carlo(
            &ideal,
            &noisy,
            400,
            7,
            &with_backend(threads, TermOrder::BestFirst, SharedTableMode::On),
        )
        .expect("parallel shared mc");
        assert_eq!(
            shared.estimate.to_bits(),
            shared_reference.estimate.to_bits(),
            "t={threads}: shared-store MC must be bit-stable"
        );
        assert_eq!(
            shared.std_error.to_bits(),
            shared_reference.std_error.to_bits()
        );
    }
}

/// Every worker's decision-diagram statistics end up merged in the
/// report, and the ε-decision path carries them up to the checker.
#[test]
fn reports_carry_merged_worker_stats() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.99 }, 2, 5);
    let seq = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_threads(1, TermOrder::Lexicographic),
    )
    .expect("sequential");
    let par = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_threads(4, TermOrder::Lexicographic),
    )
    .expect("parallel");
    assert!(seq.stats.cont_calls > 0);
    assert!(par.stats.cont_calls > 0);
    assert!(par.stats.nodes_created >= seq.stats.nodes_created / 2);

    let checked = check_equivalence(&ideal, &noisy, 0.05, &with_threads(4, TermOrder::BestFirst))
        .expect("check");
    assert_eq!(checked.verdict, Verdict::Equivalent);
    assert!(checked.stats.nodes_created > 0);
}

/// The shared store's structure-sharing payoff, stats-level: a 4-worker
/// shared run allocates strictly fewer nodes than the same run on
/// private per-worker managers (which rebuild common sub-diagrams once
/// per thread), records cross-thread unique-table hits, and reports true
/// (non-double-counted) allocation totals ≈ the sequential run's.
#[test]
fn shared_store_reduces_aggregate_allocations() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 6);
    let shared = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_backend(4, TermOrder::Lexicographic, SharedTableMode::On),
    )
    .expect("shared parallel");
    let private = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_backend(4, TermOrder::Lexicographic, SharedTableMode::Off),
    )
    .expect("private parallel");
    let sequential = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_backend(1, TermOrder::Lexicographic, SharedTableMode::Off),
    )
    .expect("sequential");
    assert!(
        shared.stats.nodes_created < private.stats.nodes_created,
        "shared store must allocate less than per-worker rebuilding: {} vs {}",
        shared.stats.nodes_created,
        private.stats.nodes_created
    );
    assert!(
        shared.stats.cross_unique_hits > 0,
        "4 workers on 256 terms must share structure across threads"
    );
    // Store-aware attribution: the shared total is one global count, in
    // the same ballpark as the sequential build — not workers × that.
    assert!(
        shared.stats.nodes_created <= sequential.stats.nodes_created * 2,
        "shared {} vs sequential {} — double counting?",
        shared.stats.nodes_created,
        sequential.stats.nodes_created
    );
}

/// With table reuse off a fresh manager is created per term; all of one
/// worker's managers must share one store identity, so hits on nodes
/// that the same thread built during *earlier terms* are not counted as
/// cross-thread sharing. One worker ⇒ zero cross-thread hits, exactly.
#[test]
fn fresh_per_term_managers_keep_one_worker_identity() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 2, 9);
    let report = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &CheckOptions {
            reuse_tables: false,
            ..with_backend(1, TermOrder::Lexicographic, SharedTableMode::On)
        },
    )
    .expect("fresh-manager shared run");
    assert!(
        report.stats.unique_hits > 0,
        "16 structurally-identical terms must hit the unique table"
    );
    assert_eq!(
        report.stats.cross_unique_hits, 0,
        "a single worker can never hit across threads"
    );
}

/// Cross-term computed-table seeding: with the flag on, workers import
/// the heaviest completed term's contraction cache before each new
/// batch, the imports land (seed_imports) and pay off (seed_hits), and —
/// because seeded entries are value-identical to recomputation on the
/// canonical shared store — the result stays bit-identical.
#[test]
fn cont_cache_seeding_imports_pay_off_and_preserve_results() {
    let ideal = qft(3, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(&ideal, &NoiseChannel::Depolarizing { p: 0.999 }, 4, 6);
    let unseeded = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &with_backend(1, TermOrder::BestFirst, SharedTableMode::On),
    )
    .expect("unseeded sequential shared");
    let seeded = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &CheckOptions {
            seed_cont_cache: true,
            ..with_backend(4, TermOrder::BestFirst, SharedTableMode::On)
        },
    )
    .expect("seeded parallel shared");
    assert!(
        seeded.stats.seed_imports > 0,
        "4 workers over 256 terms must import at least one snapshot entry"
    );
    assert!(
        seeded.stats.seed_hits > 0,
        "imported cont-cache entries must serve at least one hit"
    );
    assert_eq!(
        seeded.fidelity_lower.to_bits(),
        unseeded.fidelity_lower.to_bits(),
        "seeding may only transplant work, never change values"
    );
    // Seeding defaults on for shared-store runs; `seed_cont_cache:
    // false` is the escape hatch and must silence all traffic.
    let plain = fidelity_alg1(
        &ideal,
        &noisy,
        None,
        &CheckOptions {
            seed_cont_cache: false,
            ..with_backend(4, TermOrder::BestFirst, SharedTableMode::On)
        },
    )
    .expect("plain parallel shared");
    assert_eq!(plain.stats.seed_imports, 0);
    assert_eq!(plain.stats.seed_hits, 0);
    // And the default-on path is value-transparent too.
    assert_eq!(
        plain.fidelity_lower.to_bits(),
        seeded.fidelity_lower.to_bits(),
        "disabling seeding may not change values either"
    );
}
