//! The vectorised (multi-lane) noise sweep against its scalar
//! reference path.
//!
//! The contract under test: `sweep_lanes` is a pure performance knob.
//! Batching sweep points into multi-lane contractions must change
//! *nothing* observable per point — fidelities bit-identical to the
//! scalar per-point replay at every lane width, thread count and store
//! mode; ragged tails handled; and the ε-aware
//! `sweep_noise_verdicts` agreeing with the exact sweep and with
//! itself run point by point.
//!
//! Options are always set explicitly (the CI thread-sanity and
//! shared-table matrices override the defaults via environment
//! variables, and these tests pin exact configurations).

use qaec::{AlgorithmChoice, CheckOptions, Checker, CompiledCheck, SharedTableMode};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};

/// A QFT with several depolarizing sites — the sweep workload shape
/// (every site re-parameterised per point).
fn fixture(n: usize, sites: usize) -> (Circuit, Circuit) {
    let ideal = qft(n, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        sites,
        0xC0FFEE + n as u64,
    );
    (ideal, noisy)
}

fn options(
    algorithm: AlgorithmChoice,
    threads: usize,
    shared: SharedTableMode,
    lanes: usize,
) -> CheckOptions {
    CheckOptions {
        algorithm,
        threads,
        shared_table: shared,
        sweep_lanes: lanes,
        ..CheckOptions::default()
    }
}

fn compile(ideal: &Circuit, noisy: &Circuit, opts: &CheckOptions) -> CompiledCheck {
    Checker::new(ideal, noisy)
        .options(opts.clone())
        .compile()
        .expect("compile")
}

/// Nine strengths: a ragged tail for every lane width > 1
/// (9 = 8+1 = 4+4+1 = 2·4+1).
const STRENGTHS: [f64; 9] = [0.999, 0.998, 0.997, 0.996, 0.995, 0.99, 0.98, 0.97, 0.96];
const EPSILON: f64 = 0.02;

/// Lane widths {1, 2, 4, 8} × threads {1, 4} × shared/private store:
/// every configuration's sweep is bit-identical to the same
/// configuration with lanes forced to 1 (the scalar per-point replay).
/// Private stores keep order-dependent first-come-first-served weight
/// merging, so lanes auto-disable there and the comparison is
/// trivially exact; shared stores exercise the real lane engine.
#[test]
fn lane_sweep_is_bitwise_identical_to_scalar_replay() {
    let (ideal, noisy) = fixture(3, 4);
    for threads in [1usize, 4] {
        for shared in [SharedTableMode::On, SharedTableMode::Off] {
            let scalar = compile(
                &ideal,
                &noisy,
                &options(AlgorithmChoice::AlgorithmII, threads, shared, 1),
            )
            .sweep_noise(EPSILON, &STRENGTHS)
            .expect("scalar sweep");
            for lanes in [2usize, 4, 8] {
                let swept = compile(
                    &ideal,
                    &noisy,
                    &options(AlgorithmChoice::AlgorithmII, threads, shared, lanes),
                )
                .sweep_noise(EPSILON, &STRENGTHS)
                .expect("lane sweep");
                assert_eq!(swept.len(), scalar.len());
                for (i, (lane, reference)) in swept.iter().zip(&scalar).enumerate() {
                    assert_eq!(
                        lane.fidelity.to_bits(),
                        reference.fidelity.to_bits(),
                        "lanes={lanes} t{threads} {shared:?} point {i}: \
                         {} != {}",
                        lane.fidelity,
                        reference.fidelity
                    );
                    assert_eq!(
                        lane.verdict, reference.verdict,
                        "lanes={lanes} t{threads} {shared:?} point {i}"
                    );
                }
            }
        }
    }
}

/// The lane path must also be thread-count independent on its own:
/// batches contract sequentially, so `threads` cannot change a bit.
#[test]
fn lane_sweep_is_thread_count_independent() {
    let (ideal, noisy) = fixture(3, 4);
    let t1 = compile(
        &ideal,
        &noisy,
        &options(AlgorithmChoice::AlgorithmII, 1, SharedTableMode::On, 8),
    )
    .sweep_noise(EPSILON, &STRENGTHS)
    .expect("t1 sweep");
    let t4 = compile(
        &ideal,
        &noisy,
        &options(AlgorithmChoice::AlgorithmII, 4, SharedTableMode::On, 8),
    )
    .sweep_noise(EPSILON, &STRENGTHS)
    .expect("t4 sweep");
    for (a, b) in t1.iter().zip(&t4) {
        assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.max_nodes, b.max_nodes);
    }
}

/// Observable proof the batching engaged (and did not silently fall
/// back): every point of a width-8 batch reports the batch's shared
/// single-traversal evidence — identical statistics, node counts and
/// elapsed time — while the ragged ninth point ran alone on the scalar
/// path.
#[test]
fn lane_batches_report_shared_batch_evidence() {
    let (ideal, noisy) = fixture(3, 4);
    let points = compile(
        &ideal,
        &noisy,
        &options(AlgorithmChoice::AlgorithmII, 1, SharedTableMode::On, 8),
    )
    .sweep_noise(EPSILON, &STRENGTHS)
    .expect("sweep");
    assert_eq!(points.len(), 9);
    let head = &points[0];
    for (i, point) in points.iter().take(8).enumerate() {
        assert_eq!(point.stats, head.stats, "batch point {i} stats");
        assert_eq!(point.max_nodes, head.max_nodes, "batch point {i} nodes");
        assert_eq!(point.elapsed, head.elapsed, "batch point {i} elapsed");
    }
    // The lane traversal did real decision-diagram work exactly once.
    assert!(head.stats.cont_calls > 0);
}

/// `sweep_noise_verdicts` (ε-aware, early-exit) agrees with the exact
/// sweep's decisions and with itself run one strength at a time, on
/// both backends and both store modes. The ε is chosen to split the
/// strength range, so both verdicts actually occur.
#[test]
fn verdicts_sweep_matches_exact_sweep_and_point_by_point_runs() {
    let (ideal, noisy) = fixture(3, 4);
    for algorithm in [AlgorithmChoice::AlgorithmI, AlgorithmChoice::AlgorithmII] {
        for shared in [SharedTableMode::On, SharedTableMode::Off] {
            let opts = options(algorithm, 1, shared, 8);
            let compiled = compile(&ideal, &noisy, &opts);
            let verdicts = compiled
                .sweep_noise_verdicts(EPSILON, &STRENGTHS)
                .expect("verdict sweep");
            assert_eq!(verdicts.len(), STRENGTHS.len());
            let exact = compiled
                .sweep_noise(EPSILON, &STRENGTHS)
                .expect("exact sweep");
            for (i, (v, point)) in verdicts.iter().zip(&exact).enumerate() {
                assert_eq!(*v, point.verdict, "{algorithm:?} {shared:?} point {i}");
            }
            for (i, &strength) in STRENGTHS.iter().enumerate() {
                let single = compiled
                    .sweep_noise_verdicts(EPSILON, &[strength])
                    .expect("single-point verdict");
                assert_eq!(single[0], verdicts[i], "{algorithm:?} {shared:?} point {i}");
            }
            let seen: std::collections::HashSet<_> =
                verdicts.iter().map(|v| format!("{v}")).collect();
            assert_eq!(seen.len(), 2, "ε must split the range: {verdicts:?}");
        }
    }
}
