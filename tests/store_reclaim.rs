//! Epoch-based store reclamation (`CheckOptions::store_reclaim`) is a
//! pure memory knob.
//!
//! The contract under test: retiring the session's shared store for a
//! compact successor at quiescent boundaries changes *nothing*
//! observable but the footprint — every sweep fidelity and verdict is
//! bit-identical with reclamation on, off or auto, at every thread
//! count and lane width; and on a multi-point sweep the reclaim-on peak
//! footprint stays strictly (in fact multiples) below the append-only
//! reclaim-off peak.
//!
//! Options are always set explicitly (the CI shared-table and
//! reclamation matrices override the defaults via environment
//! variables, and these tests pin exact configurations).

use qaec::{
    AlgorithmChoice, CheckOptions, Checker, CompiledCheck, SharedTableMode, StoreReclaimMode,
};
use qaec_circuit::generators::{qft, QftStyle};
use qaec_circuit::noise_insertion::insert_random_noise;
use qaec_circuit::{Circuit, NoiseChannel};

/// A QFT with several depolarizing sites — the sweep workload shape
/// (every site re-parameterised per point).
fn fixture(n: usize, sites: usize) -> (Circuit, Circuit) {
    let ideal = qft(n, QftStyle::DecomposedNoSwaps);
    let noisy = insert_random_noise(
        &ideal,
        &NoiseChannel::Depolarizing { p: 0.999 },
        sites,
        0xEC0 + n as u64,
    );
    (ideal, noisy)
}

fn options(threads: usize, lanes: usize, reclaim: StoreReclaimMode) -> CheckOptions {
    CheckOptions {
        algorithm: AlgorithmChoice::AlgorithmII,
        threads,
        shared_table: SharedTableMode::On,
        sweep_lanes: lanes,
        store_reclaim: reclaim,
        ..CheckOptions::default()
    }
}

fn compile(ideal: &Circuit, noisy: &Circuit, opts: &CheckOptions) -> CompiledCheck {
    Checker::new(ideal, noisy)
        .options(opts.clone())
        .compile()
        .expect("compile")
}

/// Eight distinct strengths: every point interns a fresh set of Kraus
/// weights, so an append-only store grows at every point.
const STRENGTHS: [f64; 8] = [0.999, 0.998, 0.997, 0.996, 0.995, 0.99, 0.98, 0.97];
const EPSILON: f64 = 0.02;

/// Reclamation modes {off, on, auto} × threads {1, 4} × lanes {1, 8}:
/// every configuration's 8-point sweep is bit-identical to the
/// reclaim-off single-thread scalar reference. Interning is pure (a
/// function of the value, or of the scope's values), and no engine
/// value depends on an id, so swapping stores between points cannot
/// move a bit.
#[test]
fn reclaim_modes_are_bit_identical_across_threads_and_lanes() {
    let (ideal, noisy) = fixture(3, 4);
    let reference = compile(&ideal, &noisy, &options(1, 1, StoreReclaimMode::Off))
        .sweep_noise(EPSILON, &STRENGTHS)
        .expect("reference sweep");
    assert_eq!(reference.len(), STRENGTHS.len());
    for threads in [1usize, 4] {
        for lanes in [1usize, 8] {
            for reclaim in [
                StoreReclaimMode::Off,
                StoreReclaimMode::On,
                StoreReclaimMode::Auto,
            ] {
                let swept = compile(&ideal, &noisy, &options(threads, lanes, reclaim))
                    .sweep_noise(EPSILON, &STRENGTHS)
                    .expect("sweep");
                assert_eq!(swept.len(), reference.len());
                for (i, (point, expected)) in swept.iter().zip(&reference).enumerate() {
                    assert_eq!(
                        point.fidelity.to_bits(),
                        expected.fidelity.to_bits(),
                        "t{threads} lanes={lanes} {reclaim:?} point {i}: \
                         {} != {}",
                        point.fidelity,
                        expected.fidelity
                    );
                    assert_eq!(
                        point.verdict, expected.verdict,
                        "t{threads} lanes={lanes} {reclaim:?} point {i}"
                    );
                }
            }
        }
    }
}

/// Repeated queries keep their answers across reclamation too — the
/// session's cached knowledge is scalars, never store ids, so a swap
/// between queries is invisible.
#[test]
fn queries_survive_reclamation_between_them() {
    let (ideal, noisy) = fixture(3, 3);
    let mut off = compile(&ideal, &noisy, &options(1, 1, StoreReclaimMode::Off));
    let mut on = compile(&ideal, &noisy, &options(1, 1, StoreReclaimMode::On));
    let f_off = off.fidelity().expect("fidelity off");
    let f_on = on.fidelity().expect("fidelity on");
    assert_eq!(f_off.to_bits(), f_on.to_bits());
    for epsilon in [0.2, 0.05, 0.01] {
        assert_eq!(
            off.verdict(epsilon).expect("verdict off"),
            on.verdict(epsilon).expect("verdict on"),
            "epsilon {epsilon}"
        );
    }
}

/// The memory contract: on a multi-point scalar sweep, reclaim-on
/// retires every point's arenas at the point boundary, so its peak
/// footprint is about one point's worth — strictly below (gated well
/// below) the reclaim-off store that accumulates all eight points. The
/// current footprint drops the same way. Fidelities stay bit-equal
/// while it happens.
#[test]
fn reclaim_on_peaks_strictly_below_reclaim_off() {
    let (ideal, noisy) = fixture(4, 5);
    let off = compile(&ideal, &noisy, &options(1, 1, StoreReclaimMode::Off));
    let off_points = off.sweep_noise(EPSILON, &STRENGTHS).expect("off sweep");
    let peak_off = off.warm_store_peak_bytes();
    let on = compile(&ideal, &noisy, &options(1, 1, StoreReclaimMode::On));
    let on_points = on.sweep_noise(EPSILON, &STRENGTHS).expect("on sweep");
    let peak_on = on.warm_store_peak_bytes();
    for (a, b) in off_points.iter().zip(&on_points) {
        assert_eq!(a.fidelity.to_bits(), b.fidelity.to_bits());
        assert_eq!(a.verdict, b.verdict);
    }
    assert!(peak_on > 0, "the store did work");
    assert!(
        peak_on < peak_off,
        "reclaim-on peak {peak_on} B must stay below reclaim-off {peak_off} B"
    );
    assert!(
        on.warm_store_bytes() < off.warm_store_bytes(),
        "reclaim-on current footprint {} B must stay below reclaim-off {} B",
        on.warm_store_bytes(),
        off.warm_store_bytes()
    );
}
