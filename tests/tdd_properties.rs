//! Property-based tests of the decision-diagram engine against the dense
//! tensor backend: canonicity, algebraic laws, and contraction agreement.

use proptest::prelude::*;
use qaec_math::C64;
use qaec_tdd::{convert, gc, ops, TddManager};
use qaec_tensornet::{IndexId, Tensor, VarOrder};

/// Strategy: a random dense tensor over indices `0..rank`.
fn tensor(rank: usize) -> impl proptest::strategy::Strategy<Value = Tensor> {
    proptest::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| C64::new(re, im)),
        1usize << rank,
    )
    .prop_map(move |data| Tensor::from_flat((0..rank as u32).map(IndexId).collect(), data))
}

fn order(rank: u32) -> VarOrder {
    VarOrder::from_sequence((0..rank).map(IndexId))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip(t in tensor(4)) {
        let order = order(4);
        let mut m = TddManager::new();
        let e = convert::from_tensor(&mut m, &t, &order);
        let back = convert::to_tensor(&m, e, t.indices(), &order);
        prop_assert!(back.approx_eq(&t, 1e-9));
    }

    /// Canonicity: the same tensor built twice maps to the same edge; a
    /// scaled copy shares the node with a different weight.
    #[test]
    fn canonicity(t in tensor(3), scale_re in 0.25f64..4.0) {
        let order = order(3);
        let mut m = TddManager::new();
        let e1 = convert::from_tensor(&mut m, &t, &order);
        let e2 = convert::from_tensor(&mut m, &t, &order);
        prop_assert_eq!(e1, e2);
        let scaled = t.scale(C64::real(scale_re));
        let e3 = convert::from_tensor(&mut m, &scaled, &order);
        prop_assert_eq!(e1.node, e3.node, "scaling must reuse the node");
    }

    #[test]
    fn add_commutes_and_matches_dense(a in tensor(4), b in tensor(4)) {
        let order = order(4);
        let mut m = TddManager::new();
        let ea = convert::from_tensor(&mut m, &a, &order);
        let eb = convert::from_tensor(&mut m, &b, &order);
        let ab = ops::add(&mut m, ea, eb);
        let ba = ops::add(&mut m, eb, ea);
        prop_assert_eq!(ab, ba);
        let dense: Vec<C64> = a.data().iter().zip(b.data()).map(|(&x, &y)| x + y).collect();
        let expected = Tensor::from_flat(a.indices().to_vec(), dense);
        let got = convert::to_tensor(&m, ab, a.indices(), &order);
        prop_assert!(got.approx_eq(&expected, 1e-8));
    }

    #[test]
    fn add_is_associative(a in tensor(3), b in tensor(3), c in tensor(3)) {
        let order = order(3);
        let mut m = TddManager::new();
        let (ea, eb, ec) = {
            let ea = convert::from_tensor(&mut m, &a, &order);
            let eb = convert::from_tensor(&mut m, &b, &order);
            let ec = convert::from_tensor(&mut m, &c, &order);
            (ea, eb, ec)
        };
        let left = {
            let ab = ops::add(&mut m, ea, eb);
            ops::add(&mut m, ab, ec)
        };
        let right = {
            let bc = ops::add(&mut m, eb, ec);
            ops::add(&mut m, ea, bc)
        };
        // Values agree (node identity may differ only by weight
        // tolerance; compare densely).
        let lt = convert::to_tensor(&m, left, a.indices(), &order);
        let rt = convert::to_tensor(&m, right, a.indices(), &order);
        prop_assert!(lt.approx_eq(&rt, 1e-7));
    }

    /// cont(A, B, Γ) matches the dense contraction for random matrices
    /// sharing one index.
    #[test]
    fn cont_matches_dense(a in tensor(2), b in tensor(2)) {
        // Relabel: A over {0,1}, B over {1,2}.
        let a = Tensor::from_flat(vec![IndexId(0), IndexId(1)], a.data().to_vec());
        let b = Tensor::from_flat(vec![IndexId(1), IndexId(2)], b.data().to_vec());
        let order = order(3);
        let mut m = TddManager::new();
        let ea = convert::from_tensor(&mut m, &a, &order);
        let eb = convert::from_tensor(&mut m, &b, &order);
        let set = m.intern_elim_set(vec![1]);
        let prod = ops::cont(&mut m, ea, eb, set);
        let expected = a.contract(&b, &[IndexId(1)]);
        let got = convert::to_tensor(&m, prod, &[IndexId(0), IndexId(2)], &order);
        prop_assert!(got.approx_eq(&expected, 1e-8));
    }

    /// Contraction distributes over addition:
    /// cont(A + B, C) = cont(A, C) + cont(B, C).
    #[test]
    fn cont_distributes_over_add(a in tensor(3), b in tensor(3), c in tensor(3)) {
        let order = order(3);
        let mut m = TddManager::new();
        let ea = convert::from_tensor(&mut m, &a, &order);
        let eb = convert::from_tensor(&mut m, &b, &order);
        let ec = convert::from_tensor(&mut m, &c, &order);
        let set = m.intern_elim_set(vec![0, 1, 2]);
        let left = {
            let sum = ops::add(&mut m, ea, eb);
            ops::cont(&mut m, sum, ec, set)
        };
        let right = {
            let ac = ops::cont(&mut m, ea, ec, set);
            let bc = ops::cont(&mut m, eb, ec, set);
            ops::add(&mut m, ac, bc)
        };
        let lv = m.edge_scalar(left).expect("scalar");
        let rv = m.edge_scalar(right).expect("scalar");
        prop_assert!((lv - rv).abs() < 1e-7, "{lv} vs {rv}");
    }

    /// Garbage collection preserves every protected root.
    #[test]
    fn gc_preserves_roots(a in tensor(4), b in tensor(4)) {
        let order = order(4);
        let mut m = TddManager::new();
        let ea = convert::from_tensor(&mut m, &a, &order);
        let eb = convert::from_tensor(&mut m, &b, &order);
        // Garbage: partial sums never rooted.
        let _ = ops::add(&mut m, ea, eb);
        let kept = gc::collect(&mut m, &[ea, eb]);
        let ka = convert::to_tensor(&m, kept[0], a.indices(), &order);
        let kb = convert::to_tensor(&m, kept[1], b.indices(), &order);
        prop_assert!(ka.approx_eq(&a, 1e-9));
        prop_assert!(kb.approx_eq(&b, 1e-9));
    }

    /// Node counts never exceed the worst-case bound `2^{r+1}` and the
    /// diagram evaluates correctly at random points after any op.
    #[test]
    fn node_count_bound(t in tensor(5)) {
        let order = order(5);
        let mut m = TddManager::new();
        let e = convert::from_tensor(&mut m, &t, &order);
        prop_assert!(m.node_count(e) <= (1 << 6));
    }
}

#[test]
fn identity_chain_shares_everything() {
    // N identical tensors must cost one conversion's worth of nodes.
    let order = VarOrder::from_sequence((0..2).map(IndexId));
    let t = Tensor::delta(IndexId(0), IndexId(1));
    let mut m = TddManager::new();
    let first = convert::from_tensor(&mut m, &t, &order);
    let created = m.stats().nodes_created;
    for _ in 0..10 {
        let again = convert::from_tensor(&mut m, &t, &order);
        assert_eq!(again, first);
    }
    assert_eq!(m.stats().nodes_created, created, "no new nodes");
}
